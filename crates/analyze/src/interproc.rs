//! Interprocedural substrate: the cross-box queries behind the `AZ5xx`
//! dataflow and `AZ6xx` race passes.
//!
//! The per-box passes (`AZ1xx`–`AZ3xx`) see one [`ProgramModel`] at a
//! time, so every property that spans a signaling path — flowlink
//! convergence, descriptor freshness, race resolution — is invisible to
//! them. This module lifts the analysis to whole [`ScenarioModel`]s:
//!
//! * [`tunnels`] resolves channel *bindings* into [`Tunnel`]s: topology
//!   links whose two ends are both programmed, with the riding slots
//!   paired across the link (the n-th slot declared on each side's bound
//!   channel are tunnel peers);
//! * [`co_reachable`] computes a *path-product abstraction* per tunnel:
//!   the set of `(state of A, state of B, channel up?)` triples some
//!   interleaved execution can reach. Box-local triggers fire freely (a
//!   sound over-approximation — the environment can supply any event);
//!   only the shared channel and the paired slots synchronize the product:
//!   `channelUp`/`channelDown` triggers are gated on the channel bit,
//!   `openChannel`/`closeChannel` effects flip it, and slot-progress
//!   triggers on paired slots require the channel up and a peer that can
//!   actually drive the slot ([`can_flow`] / [`can_close`]);
//! * [`future_flow_claim`] answers the liveness question the dataflow
//!   pass needs at permanent rests: can the peer, from here, ever again
//!   claim the paired slot with a flow-wanting goal?
//! * [`covered_classes`] maps a scenario onto the dynamic path classes
//!   the `mck` explorer can check directly, for differential validation:
//!   each simple topology path whose interior boxes flowlink it
//!   end-to-end becomes a `(links, left goal, right goal)` class.

use ipmedia_core::path::EndGoal;
use ipmedia_core::program::model::{ModelEffect, ModelTrigger, ProgramModel, ScenarioModel};
use ipmedia_core::GoalKind;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A topology link between two *programmed* boxes, with the program-local
/// channel each side binds to it and the slot pairs riding it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tunnel {
    /// One end's box name.
    pub box_a: String,
    /// `box_a`'s channel bound to this link.
    pub chan_a: String,
    /// The other end's box name.
    pub box_b: String,
    /// `box_b`'s channel bound to this link.
    pub chan_b: String,
    /// Paired slots, `(slot of box_a, slot of box_b)`, in tunnel order
    /// (declaration order of the riders on each side).
    pub pairs: Vec<(String, String)>,
}

impl Tunnel {
    /// The peer slot paired with `slot` of `box_name`, if any.
    pub fn paired_slot(&self, box_name: &str, slot: &str) -> Option<&str> {
        for (sa, sb) in &self.pairs {
            if box_name == self.box_a && sa == slot {
                return Some(sb);
            }
            if box_name == self.box_b && sb == slot {
                return Some(sa);
            }
        }
        None
    }

    /// The box facing `box_name` across this tunnel.
    pub fn peer_of(&self, box_name: &str) -> &str {
        if box_name == self.box_a {
            &self.box_b
        } else {
            &self.box_a
        }
    }
}

/// Resolve a scenario's channel bindings into tunnels: every topology
/// link whose two ends are programmed boxes with channels bound toward
/// each other, with the riding slots paired by declaration order. Links
/// with an unprogrammed or unbound end produce no tunnel — those slots
/// face the environment and get no cross-box checks.
pub fn tunnels(scenario: &ScenarioModel) -> Vec<Tunnel> {
    let mut out = Vec::new();
    for link in &scenario.topology.links {
        let (a, b) = (link.from.as_str(), link.to.as_str());
        let (Some(pa), Some(pb)) = (scenario.program_for(a), scenario.program_for(b)) else {
            continue;
        };
        let (Some(cha), Some(chb)) = (scenario.channel_toward(a, b), scenario.channel_toward(b, a))
        else {
            continue;
        };
        let sa = pa.slots_on_channel(cha);
        let sb = pb.slots_on_channel(chb);
        let pairs: Vec<(String, String)> = sa
            .iter()
            .zip(sb.iter())
            .map(|(x, y)| ((*x).to_string(), (*y).to_string()))
            .collect();
        out.push(Tunnel {
            box_a: a.to_string(),
            chan_a: cha.to_string(),
            box_b: b.to_string(),
            chan_b: chb.to_string(),
            pairs,
        });
    }
    out
}

/// True iff `program` can ever drive `slot` toward media flow: some
/// reachable state claims it with a flow-wanting goal, or some reachable
/// transition performs a protocol action that progresses it.
pub fn can_flow(program: &ProgramModel, slot: &str) -> bool {
    let reachable = program.reachable_states();
    let claims = program.states.iter().any(|st| {
        reachable.contains(st.name.as_str())
            && st
                .goals
                .iter()
                .any(|g| g.kind.wants_flow() && g.slots.iter().any(|s| s == slot))
    });
    claims
        || program.reachable_effects().iter().any(|(_, e)| {
            matches!(e, ModelEffect::UserAction { slot: s, action } if s == slot
                && !matches!(action, ipmedia_core::SlotAction::Close))
        })
}

/// True iff `program` can ever close `slot` (which rides `channel`):
/// a `close` action or `closeSlot` claim on it, closing its channel,
/// terminating outright, or dropping every claim on a slot it had been
/// driving (a goal object releases — and closes — a slot its state no
/// longer claims).
pub fn can_close(program: &ProgramModel, slot: &str, channel: &str) -> bool {
    let reachable = program.reachable_states();
    for (_, e) in program.reachable_effects() {
        match e {
            ModelEffect::UserAction {
                slot: s,
                action: ipmedia_core::SlotAction::Close,
            } if s == slot => return true,
            ModelEffect::CloseChannel(c) if c == channel => return true,
            ModelEffect::Terminate => return true,
            _ => {}
        }
    }
    let claims_at = |name: &str| -> Option<GoalKind> {
        program
            .state_named(name)?
            .goals
            .iter()
            .find(|g| g.slots.iter().any(|s| s == slot))
            .map(|g| g.kind)
    };
    for st in &program.states {
        if !reachable.contains(st.name.as_str()) {
            continue;
        }
        match claims_at(&st.name) {
            Some(GoalKind::CloseSlot) => return true,
            // A claim that can be dropped on a transition releases the
            // slot: the departing goal object closes it.
            Some(_) if st.transitions.iter().any(|t| claims_at(&t.to).is_none()) => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// True iff from `from` (inclusive) `program` can reach a state claiming
/// `slot` with a flow-wanting goal — the "will the peer ever want media
/// here again" liveness query.
pub fn future_flow_claim(program: &ProgramModel, from: &str, slot: &str) -> bool {
    let mut seen: BTreeSet<&str> = BTreeSet::new();
    let mut work: Vec<&str> = vec![from];
    while let Some(name) = work.pop() {
        if !seen.insert(name) {
            continue;
        }
        let Some(st) = program.state_named(name) else {
            continue;
        };
        if st
            .goals
            .iter()
            .any(|g| g.kind.wants_flow() && g.slots.iter().any(|s| s == slot))
        {
            return true;
        }
        for t in &st.transitions {
            work.push(t.to.as_str());
        }
    }
    false
}

/// The tunnel-product abstraction: every `(state of box_a, state of
/// box_b, channel up?)` triple some interleaved execution of the two
/// programs can reach. See the module docs for the synchronization rules;
/// everything unshared over-approximates freely, so a pair *absent* from
/// the result is genuinely unreachable, which is what lets the dataflow
/// pass call a rest "permanent".
pub fn co_reachable(
    a: &ProgramModel,
    b: &ProgramModel,
    tunnel: &Tunnel,
) -> BTreeSet<(String, String, bool)> {
    // Per-side capability caches for the paired slots the *other* side
    // waits on.
    let flow_cap: BTreeMap<(&str, &str), bool> = tunnel
        .pairs
        .iter()
        .flat_map(|(sa, sb)| {
            [
                ((tunnel.box_a.as_str(), sa.as_str()), can_flow(b, sb)),
                ((tunnel.box_b.as_str(), sb.as_str()), can_flow(a, sa)),
            ]
        })
        .collect();
    let close_cap: BTreeMap<(&str, &str), bool> = tunnel
        .pairs
        .iter()
        .flat_map(|(sa, sb)| {
            [
                (
                    (tunnel.box_a.as_str(), sa.as_str()),
                    can_close(b, sb, &tunnel.chan_b),
                ),
                (
                    (tunnel.box_b.as_str(), sb.as_str()),
                    can_close(a, sa, &tunnel.chan_a),
                ),
            ]
        })
        .collect();
    let opens = |p: &ProgramModel, ch: &str| {
        p.reachable_effects()
            .iter()
            .any(|(_, e)| matches!(e, ModelEffect::OpenChannel(c) if c == ch))
    };
    // If neither program ever opens the shared channel, the environment
    // owns it and may bring it up at any time.
    let env_up = !opens(a, &tunnel.chan_a) && !opens(b, &tunnel.chan_b);

    let enabled = |box_name: &str, own_chan: &str, trig: &ModelTrigger, up: bool| -> bool {
        match trig {
            ModelTrigger::ChannelUp(c) if c == own_chan => up,
            ModelTrigger::ChannelDown(c) if c == own_chan => !up,
            ModelTrigger::SlotOpened(s) | ModelTrigger::SlotFlowing(s) => {
                match flow_cap.get(&(box_name, s.as_str())) {
                    Some(peer_can) => up && *peer_can,
                    None => true, // unpaired slot: environment-driven
                }
            }
            ModelTrigger::SlotClosed(s) => close_cap
                .get(&(box_name, s.as_str()))
                .copied()
                .unwrap_or(true),
            _ => true,
        }
    };
    let chan_after = |own_chan: &str, effects: &[ModelEffect], up: bool| -> bool {
        let mut up = up;
        for e in effects {
            match e {
                ModelEffect::OpenChannel(c) if c == own_chan => up = true,
                ModelEffect::CloseChannel(c) if c == own_chan => up = false,
                _ => {}
            }
        }
        up
    };

    let mut seen: BTreeSet<(String, String, bool)> = BTreeSet::new();
    let mut work: VecDeque<(String, String, bool)> = VecDeque::new();
    work.push_back((a.initial.clone(), b.initial.clone(), false));
    while let Some(triple) = work.pop_front() {
        if !seen.insert(triple.clone()) {
            continue;
        }
        let (sa, sb, up) = &triple;
        if env_up && !up {
            work.push_back((sa.clone(), sb.clone(), true));
        }
        if let Some(st) = a.state_named(sa) {
            for t in &st.transitions {
                if enabled(&tunnel.box_a, &tunnel.chan_a, &t.trigger, *up) {
                    let up2 = chan_after(&tunnel.chan_a, &t.effects, *up);
                    work.push_back((t.to.clone(), sb.clone(), up2));
                }
            }
        }
        if let Some(st) = b.state_named(sb) {
            for t in &st.transitions {
                if enabled(&tunnel.box_b, &tunnel.chan_b, &t.trigger, *up) {
                    let up2 = chan_after(&tunnel.chan_b, &t.effects, *up);
                    work.push_back((sa.clone(), t.to.clone(), up2));
                }
            }
        }
    }
    seen
}

/// One dynamic path class a scenario's static verdict speaks to: a simple
/// topology path, flowlinked end-to-end by its interior boxes, rendered
/// as the `(links, left goal, right goal)` configuration the `mck`
/// explorer checks directly.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CoveredClass {
    /// Number of links (tunnels in series) on the path.
    pub links: usize,
    /// Goal at the lexically smaller end (classes are normalized so the
    /// symmetric pair dedups).
    pub left: EndGoal,
    /// Goal at the other end.
    pub right: EndGoal,
    /// The path's boxes, end to end.
    pub via: Vec<String>,
}

/// Goals a programmed endpoint can hold at rest on its path-facing slots,
/// derived from final-state claims. A final state claiming the slot with
/// `flowLink` is a pass-through rest, not an endpoint intent, and
/// contributes nothing; `None` means the box never rests as an endpoint
/// of this path.
fn endpoint_goals(program: &ProgramModel, slots: &[&str]) -> BTreeSet<EndGoal> {
    let reachable = program.reachable_states();
    let mut out = BTreeSet::new();
    for st in &program.states {
        if !st.is_final || !reachable.contains(st.name.as_str()) {
            continue;
        }
        for slot in slots {
            let kinds: Vec<GoalKind> = st
                .goals
                .iter()
                .filter(|g| g.slots.iter().any(|s| s == slot))
                .map(|g| g.kind)
                .collect();
            if kinds.contains(&GoalKind::FlowLink) {
                continue;
            }
            let goal = if kinds
                .iter()
                .any(|k| matches!(k, GoalKind::OpenSlot | GoalKind::UserAgent))
            {
                EndGoal::Open
            } else if kinds.contains(&GoalKind::HoldSlot) {
                EndGoal::Hold
            } else {
                // closeSlot, or resting with the slot unclaimed.
                EndGoal::Close
            };
            out.insert(goal);
        }
    }
    out
}

/// True iff `program` can flowlink a slot toward `prev` with a slot
/// toward `next` — the interior-box condition for a covered path.
fn links_through(scenario: &ScenarioModel, box_name: &str, prev: &str, next: &str) -> bool {
    let Some(program) = scenario.program_for(box_name) else {
        return false;
    };
    let (Some(chp), Some(chn)) = (
        scenario.channel_toward(box_name, prev),
        scenario.channel_toward(box_name, next),
    ) else {
        return false;
    };
    let sp = program.slots_on_channel(chp);
    let sn = program.slots_on_channel(chn);
    let reachable = program.reachable_states();
    program.states.iter().any(|st| {
        reachable.contains(st.name.as_str())
            && st.goals.iter().any(|g| {
                g.kind == GoalKind::FlowLink
                    && g.slots.iter().any(|s| sp.contains(&s.as_str()))
                    && g.slots.iter().any(|s| sn.contains(&s.as_str()))
            })
    })
}

/// Default maximum path length (in links) [`covered_classes`] maps onto
/// `mck` configurations. A class with `n` links has `n - 1` interior
/// flowlink boxes; beyond this depth the explorer's budgeted prefix is
/// too shallow to be informative, so longer chains are only covered when
/// a caller asks for them via [`covered_classes_up_to`].
pub const MAX_COVERED_LINKS: usize = 4;

/// The dynamic path classes covered by a scenario: every simple topology
/// path of at most [`MAX_COVERED_LINKS`] links whose interior boxes can
/// flowlink it end to end, crossed with the end goals each endpoint can
/// hold (an unprogrammed endpoint is a free user agent and contributes
/// all three). Classes are normalized (`left <= right`) and deduplicated
/// per `(links, left, right)`; `via` keeps one witness path.
pub fn covered_classes(scenario: &ScenarioModel) -> Vec<CoveredClass> {
    covered_classes_up_to(scenario, MAX_COVERED_LINKS)
}

/// [`covered_classes`] with an explicit cap on path length, for callers
/// that want to trade checker depth against coverage (the fuzz harness
/// widens or narrows the oracle per campaign budget).
pub fn covered_classes_up_to(scenario: &ScenarioModel, max_links: usize) -> Vec<CoveredClass> {
    let topo = &scenario.topology;
    let mut classes: BTreeMap<(usize, EndGoal, EndGoal), Vec<String>> = BTreeMap::new();
    let n = topo.boxes.len();
    for i in 0..n {
        for j in i + 1..n {
            let Some(path) = simple_path(scenario, &topo.boxes[i], &topo.boxes[j]) else {
                continue;
            };
            let links = path.len() - 1;
            if links == 0 || links > max_links {
                continue;
            }
            if !(1..links).all(|k| links_through(scenario, &path[k], &path[k - 1], &path[k + 1])) {
                continue;
            }
            let Some(lg) = end_goals(scenario, &path[0], &path[1]) else {
                continue;
            };
            let Some(rg) = end_goals(scenario, &path[links], &path[links - 1]) else {
                continue;
            };
            for l in &lg {
                for r in &rg {
                    let (lo, hi) = if l <= r { (*l, *r) } else { (*r, *l) };
                    classes
                        .entry((links, lo, hi))
                        .or_insert_with(|| path.clone());
                }
            }
        }
    }
    classes
        .into_iter()
        .map(|((links, left, right), via)| CoveredClass {
            links,
            left,
            right,
            via,
        })
        .collect()
}

/// End goals the endpoint `box_name` (facing `toward`) can hold: all
/// three for an unprogrammed box, the final-state-derived set otherwise.
fn end_goals(scenario: &ScenarioModel, box_name: &str, toward: &str) -> Option<BTreeSet<EndGoal>> {
    let Some(program) = scenario.program_for(box_name) else {
        return Some([EndGoal::Open, EndGoal::Close, EndGoal::Hold].into());
    };
    let ch = scenario.channel_toward(box_name, toward)?;
    let slots = program.slots_on_channel(ch);
    if slots.is_empty() {
        return None;
    }
    let goals = endpoint_goals(program, &slots);
    if goals.is_empty() {
        None
    } else {
        Some(goals)
    }
}

/// The unique simple path between two boxes in the (tree-shaped) channel
/// graph, as a box-name sequence; `None` if disconnected.
fn simple_path(scenario: &ScenarioModel, from: &str, to: &str) -> Option<Vec<String>> {
    let topo = &scenario.topology;
    let mut parent: BTreeMap<&str, &str> = BTreeMap::new();
    let mut work: VecDeque<&str> = VecDeque::new();
    parent.insert(from, from);
    work.push_back(from);
    while let Some(cur) = work.pop_front() {
        if cur == to {
            let mut path = vec![to.to_string()];
            let mut at = to;
            while at != from {
                at = parent[at];
                path.push(at.to_string());
            }
            path.reverse();
            return Some(path);
        }
        for nb in topo.neighbors(cur) {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(nb) {
                e.insert(cur);
                work.push_back(nb);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipmedia_core::path::Topology;
    use ipmedia_core::program::model::GoalAnnotation;
    use ipmedia_core::program::model::StateModel;

    /// Two linking servers facing each other over one bound link.
    fn facing_servers() -> ScenarioModel {
        let server = |name: &str| {
            ProgramModel::new(name)
                .channel("chA")
                .channel("chB")
                .slot("sa", Some("chA"))
                .slot("sb", Some("chB"))
                .state(
                    StateModel::new("linked")
                        .final_state()
                        .goal(GoalAnnotation::link("sa", "sb")),
                )
        };
        ScenarioModel::new("pair")
            .program("s1", server("s1"))
            .program("s2", server("s2"))
            .with_topology(
                Topology::new()
                    .with_box("left")
                    .with_box("s1")
                    .with_box("s2")
                    .with_box("right")
                    .with_link("left", "s1", 1)
                    .with_link("s1", "s2", 1)
                    .with_link("s2", "right", 1),
            )
            .bind("s1", "chA", "left")
            .bind("s1", "chB", "s2")
            .bind("s2", "chA", "s1")
            .bind("s2", "chB", "right")
    }

    #[test]
    fn bindings_resolve_to_one_tunnel_with_paired_slots() {
        let sc = facing_servers();
        let ts = tunnels(&sc);
        assert_eq!(ts.len(), 1, "{ts:?}");
        let t = &ts[0];
        assert_eq!((t.box_a.as_str(), t.box_b.as_str()), ("s1", "s2"));
        assert_eq!((t.chan_a.as_str(), t.chan_b.as_str()), ("chB", "chA"));
        assert_eq!(t.pairs, vec![("sb".to_string(), "sa".to_string())]);
        assert_eq!(t.paired_slot("s1", "sb"), Some("sa"));
        assert_eq!(t.paired_slot("s2", "sa"), Some("sb"));
        assert_eq!(t.paired_slot("s1", "sa"), None);
    }

    #[test]
    fn environment_owned_channel_comes_up_in_the_product() {
        let sc = facing_servers();
        let t = &tunnels(&sc)[0];
        let (a, b) = (sc.program_for("s1").unwrap(), sc.program_for("s2").unwrap());
        let r = co_reachable(a, b, t);
        // Neither server opens chB/chA itself, so the environment may.
        assert!(r.contains(&("linked".into(), "linked".into(), true)));
        assert!(r.contains(&("linked".into(), "linked".into(), false)));
    }

    #[test]
    fn channel_up_trigger_is_gated_on_the_channel_bit() {
        // A waits for its bound channel; B never opens its side, and A
        // doesn't either — but then *neither* does, so env owns it and A
        // can proceed. Make B the (never-acting) opener by giving it a
        // reachable openChannel, which revokes env ownership.
        let a = ProgramModel::new("a")
            .channel("c")
            .slot("s", Some("c"))
            .state(StateModel::new("wait").on(ModelTrigger::ChannelUp("c".into()), "go", vec![]))
            .state(StateModel::new("go").final_state());
        let b = ProgramModel::new("b")
            .channel("c")
            .slot("s", Some("c"))
            .state(StateModel::new("idle").on(
                ModelTrigger::User("never".into()),
                "opened",
                vec![ModelEffect::OpenChannel("c".into())],
            ))
            .state(StateModel::new("opened").final_state());
        let t = Tunnel {
            box_a: "a".into(),
            chan_a: "c".into(),
            box_b: "b".into(),
            chan_b: "c".into(),
            pairs: vec![("s".into(), "s".into())],
        };
        let r = co_reachable(&a, &b, &t);
        // A cannot reach `go` while B is still `idle` (channel down)...
        assert!(!r.contains(&("go".into(), "idle".into(), false)));
        assert!(!r.contains(&("go".into(), "idle".into(), true)));
        // ...but can once B opened.
        assert!(r.contains(&("go".into(), "opened".into(), true)));
    }

    #[test]
    fn slot_progress_requires_a_peer_that_can_flow() {
        // A waits for isOpened(s); B never claims or acts on its paired
        // slot, so the wait can never be satisfied.
        let a = ProgramModel::new("a")
            .channel("c")
            .slot("s", Some("c"))
            .state(StateModel::new("wait").on(ModelTrigger::SlotOpened("s".into()), "go", vec![]))
            .state(StateModel::new("go").final_state());
        let b = ProgramModel::new("b")
            .channel("c")
            .slot("u", Some("c"))
            .state(StateModel::new("rest").final_state());
        let t = Tunnel {
            box_a: "a".into(),
            chan_a: "c".into(),
            box_b: "b".into(),
            chan_b: "c".into(),
            pairs: vec![("s".into(), "u".into())],
        };
        let r = co_reachable(&a, &b, &t);
        assert!(r.iter().all(|(sa, _, _)| sa != "go"), "{r:?}");
    }

    #[test]
    fn future_flow_claim_sees_through_intermediate_states() {
        let p = ProgramModel::new("p")
            .channel("c")
            .slot("s", Some("c"))
            .state(StateModel::new("idle").on(ModelTrigger::Start, "mid", vec![]))
            .state(StateModel::new("mid").on(ModelTrigger::Start, "talk", vec![]))
            .state(
                StateModel::new("talk")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s")),
            );
        assert!(future_flow_claim(&p, "idle", "s"));
        assert!(future_flow_claim(&p, "talk", "s"));
        assert!(!future_flow_claim(&p, "idle", "other"));
    }

    #[test]
    fn dropping_a_claim_counts_as_closing_capability() {
        let p = ProgramModel::new("p")
            .channel("c")
            .slot("s", Some("c"))
            .state(
                StateModel::new("talk")
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s"))
                    .on(ModelTrigger::User("bye".into()), "done", vec![]),
            )
            .state(StateModel::new("done").final_state());
        assert!(can_close(&p, "s", "c"));
        // Claimed in every reachable state: never released.
        let q = ProgramModel::new("q")
            .channel("c")
            .slot("s", Some("c"))
            .state(
                StateModel::new("talk")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s")),
            );
        assert!(!can_close(&q, "s", "c"));
    }

    #[test]
    fn covered_classes_span_flowlinked_paths_only() {
        let sc = facing_servers();
        let classes = covered_classes(&sc);
        // left—s1—s2—right is the only covered path: both interiors
        // flowlink it end to end and both ends are free, so all six
        // normalized goal pairs appear at 3 links (2 interior flowlinks).
        // Every shorter sub-path ends at a flowLink rest and contributes
        // nothing.
        assert_eq!(classes.len(), 6, "{classes:?}");
        assert!(classes.iter().all(|c| c.links == 3), "{classes:?}");
        assert!(
            classes
                .iter()
                .all(|c| c.via == ["left".to_string(), "s1".into(), "s2".into(), "right".into()]),
            "{classes:?}"
        );

        // One server between two free endpoints: all six path types at
        // two links.
        let single = ScenarioModel::new("single")
            .program(
                "s",
                ProgramModel::new("s")
                    .channel("chA")
                    .channel("chB")
                    .slot("sa", Some("chA"))
                    .slot("sb", Some("chB"))
                    .state(
                        StateModel::new("linked")
                            .final_state()
                            .goal(GoalAnnotation::link("sa", "sb")),
                    ),
            )
            .with_topology(
                Topology::new()
                    .with_box("l")
                    .with_box("s")
                    .with_box("r")
                    .with_link("l", "s", 1)
                    .with_link("s", "r", 1),
            )
            .bind("s", "chA", "l")
            .bind("s", "chB", "r");
        let classes = covered_classes(&single);
        assert_eq!(classes.len(), 6, "{classes:?}");
        assert!(classes.iter().all(|c| c.links == 2));
        assert!(classes
            .iter()
            .any(|c| c.left == EndGoal::Open && c.right == EndGoal::Open));
    }

    /// Regression for the coverage widening: under the old ≤2-link cap
    /// the two-relay chain contributed *zero* classes — its only
    /// flowlinked end-to-end path is 3 links — so the differential
    /// oracle silently skipped it. The cap parameter reproduces the old
    /// behavior; the default must cover the class.
    #[test]
    fn three_link_class_was_uncovered_under_the_old_cap() {
        let sc = facing_servers();
        assert!(
            covered_classes_up_to(&sc, 2).is_empty(),
            "old cap covered nothing on the two-relay chain"
        );
        let widened = covered_classes_up_to(&sc, MAX_COVERED_LINKS);
        assert!(
            widened.iter().any(|c| c.links == 3),
            "default cap must cover the 3-link class: {widened:?}"
        );
        assert_eq!(covered_classes(&sc), widened);
    }

    /// Multi-flowlink scenarios map onto checker configs at every depth
    /// present: a four-relay chain covers its full 5-link path only when
    /// the cap allows, and sub-paths never leak in (flowLink rests are
    /// not endpoints).
    #[test]
    fn multi_flowlink_chain_maps_depths_up_to_the_cap() {
        let server = |name: &str| {
            ProgramModel::new(name)
                .channel("chA")
                .channel("chB")
                .slot("sa", Some("chA"))
                .slot("sb", Some("chB"))
                .state(
                    StateModel::new("linked")
                        .final_state()
                        .goal(GoalAnnotation::link("sa", "sb")),
                )
        };
        let mut topo = Topology::new().with_box("left");
        let mut sc = ScenarioModel::new("chain4");
        let relays = ["r1", "r2", "r3", "r4"];
        let mut prev = "left".to_string();
        for r in relays {
            topo = topo.with_box(r).with_link(prev.as_str(), r, 1);
            sc = sc.program(r, server(r)).bind(r, "chA", prev.as_str());
            prev = r.to_string();
        }
        topo = topo.with_box("right").with_link("r4", "right", 1);
        sc = sc.with_topology(topo);
        for w in [["r1", "r2"], ["r2", "r3"], ["r3", "r4"]] {
            sc = sc.bind(w[0], "chB", w[1]);
        }
        sc = sc.bind("r4", "chB", "right");
        // 5 links exceeds the default cap of 4: nothing covered...
        assert!(covered_classes(&sc).is_empty());
        // ...but an explicit wider cap maps the full chain.
        let wide = covered_classes_up_to(&sc, 5);
        assert_eq!(wide.len(), 6, "{wide:?}");
        assert!(wide.iter().all(|c| c.links == 5));
    }

    #[test]
    fn programmed_endpoint_goals_come_from_final_claims() {
        // dialer-style endpoint: one slot, final state claims openSlot.
        let dialer = ProgramModel::new("d")
            .channel("c")
            .slot("s", Some("c"))
            .state(StateModel::new("start").on(
                ModelTrigger::Start,
                "talk",
                vec![ModelEffect::OpenChannel("c".into())],
            ))
            .state(
                StateModel::new("talk")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s")),
            );
        let sc = ScenarioModel::new("x")
            .program("d", dialer)
            .with_topology(
                Topology::new()
                    .with_box("d")
                    .with_box("e")
                    .with_link("d", "e", 1),
            )
            .bind("d", "c", "e");
        let classes = covered_classes(&sc);
        // One programmed end fixed at Open, the free end contributes all
        // three goals: open–open, open–close, open–hold at one link.
        assert_eq!(classes.len(), 3, "{classes:?}");
        assert!(classes.iter().all(|c| c.links == 1));
        assert!(classes
            .iter()
            .all(|c| c.left == EndGoal::Open || c.right == EndGoal::Open));
    }
}
