//! Property-based scenario fuzzing with a differential analyzer↔checker
//! oracle.
//!
//! A seeded, deterministic generator ([`generate_scenario`]) produces
//! random valid-by-construction [`ScenarioModel`]s — random tree
//! topologies, random endpoint/relay program mixes built from the same
//! idioms as the `ipmedia_apps::models` registry, random goal
//! annotations, timers, and channel bindings. A campaign
//! ([`fuzz_campaign`]) runs the full static analyzer and the `mck` model
//! checker differentially over thousands of generated scenarios and
//! enforces two oracle directions:
//!
//! 1. **Soundness** — an analyzer-clean scenario (no error-severity
//!    finding) must map onto no checker configuration with a
//!    counterexample. If the checker refutes a class the analyzer said
//!    nothing about, the analyzer missed a real defect.
//! 2. **Completeness** — a checker counterexample on a covered class
//!    must be matched by some `AZ5xx`/`AZ6xx` interprocedural finding;
//!    every miss is recorded as a [`Divergence`] for triage.
//!
//! Because generated scenarios are reduced to *covered classes*
//! (`(links, left goal, right goal)` triples, [`crate::covered_classes`])
//! the checker work is shared: a campaign of thousands of scenarios
//! typically unions to a few dozen unique classes, each checked once
//! under a depth-capped budget ([`ipmedia_mck::depth_capped_states`]).
//!
//! A third, self-checking property rides along: every generated scenario
//! must round-trip through the `.ipm` text form
//! ([`crate::to_ipm`] → [`crate::parse_scenario`]) unchanged.
//!
//! Divergences are delta-minimized by [`shrink_scenario`] into small
//! reproducer scenarios suitable for promotion to `examples/models/`
//! fixtures. Everything here is deterministic: the same campaign seed
//! yields byte-identical reports at any thread count (the same
//! slot-per-item pool discipline as [`crate::runner`]).

use crate::diag::Severity;
use crate::interproc::{covered_classes_up_to, MAX_COVERED_LINKS};
use crate::{analyze_scenario, parse_scenario, to_ipm};
use ipmedia_core::path::{EndGoal, Topology};
use ipmedia_core::program::model::{
    GoalAnnotation, ModelEffect, ModelTrigger, ProgramModel, ScenarioModel, StateModel,
};
use ipmedia_core::GoalKind;
use ipmedia_mck::{budgeted, run_campaign_depth_capped, CheckConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A small, fast, seedable PRNG (splitmix64). Deterministic across
/// platforms and thread counts; every generated artifact derives from
/// one `u64` seed.
#[derive(Debug, Clone)]
pub struct FuzzRng {
    state: u64,
}

impl FuzzRng {
    /// New generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n` must be nonzero).
    #[allow(clippy::cast_possible_truncation)]
    pub fn range(&mut self, n: usize) -> usize {
        assert!(n > 0, "range over empty interval");
        (self.next_u64() % n as u64) as usize
    }

    /// Pick one element of a nonempty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.range(xs.len())]
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: usize, den: usize) -> bool {
        self.range(den) < num
    }
}

/// The per-scenario seed for scenario `index` of a campaign: one
/// splitmix64 step off the campaign seed, so scenario streams from
/// different campaign seeds do not overlap trivially.
pub fn scenario_seed(campaign_seed: u64, index: u64) -> u64 {
    FuzzRng::new(campaign_seed.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))).next_u64()
}

// ---------------------------------------------------------------------------
// Generator
// ---------------------------------------------------------------------------

/// Endpoint program shapes (attached to degree-1 boxes). Public so other
/// generators — the bench crate's call-storm harness draws its endpoint
/// feature mixes from the same library — stay in sync with the fuzzer's
/// role vocabulary.
pub const ENDPOINT_ROLES: [&str; 7] = [
    "unprogrammed",
    "answerer",
    "dialer",
    "holder",
    "hangup",
    "parked",
    "silent",
];

/// Relay program shapes (attached to interior boxes); public for the same
/// reason as [`ENDPOINT_ROLES`].
pub const RELAY_ROLES: [&str; 4] = ["relay_all", "gated_relay", "dial_through", "hold_relay"];

/// Generate one valid-by-construction scenario from a seed.
///
/// Structure: a random tree of 2–6 boxes (`b0`…) with 1–2 tunnels per
/// link; leaf boxes get endpoint programs (dialer / answerer / holder /
/// hangup / parked-resume / silent / none), interior boxes get relay
/// programs (always-linking, gated, dial-through, hold-relay — the same
/// shapes as the registry's `linking_server`/`dial_through` building
/// blocks). Channels are declared one per neighbor and explicitly bound,
/// so the topology passes are clean by construction: no `AZ001`/`AZ002`
/// structural errors and no `AZ4xx` well-formedness errors. *Semantic*
/// findings (`AZ2xx`/`AZ3xx`/`AZ5xx`/`AZ6xx`) arise naturally from the
/// program mix — silent peers opposite dialers, wedged holds upstream of
/// flowlinks — and that population is exactly what the differential
/// oracle cross-examines against the model checker.
pub fn generate_scenario(seed: u64) -> ScenarioModel {
    let mut rng = FuzzRng::new(seed);
    let n = 2 + rng.range(5); // 2..=6 boxes
    let boxes: Vec<String> = (0..n).map(|i| format!("b{i}")).collect();
    let mut topo = Topology::new();
    for b in &boxes {
        topo = topo.with_box(b.clone());
    }
    for (i, b) in boxes.iter().enumerate().skip(1) {
        let parent = rng.range(i);
        let tunnels = if rng.chance(1, 8) { 2 } else { 1 };
        topo = topo.with_link(boxes[parent].clone(), b.clone(), tunnels);
    }
    let mut sc = ScenarioModel::new(format!("fuzz_{seed:016x}")).with_topology(topo);

    for b in boxes.clone() {
        let neighbors: Vec<String> = sc
            .topology
            .neighbors(&b)
            .into_iter()
            .map(str::to_string)
            .collect();
        let built = if neighbors.len() == 1 {
            endpoint_program(&mut rng)
        } else {
            Some(relay_program(&mut rng, neighbors.len()))
        };
        let Some(program) = built else {
            continue; // unprogrammed pure endpoint: no program, no bindings
        };
        sc = sc.program(b.clone(), program);
        for (i, peer) in neighbors.iter().enumerate() {
            sc = sc.bind(b.clone(), format!("c{i}"), peer.clone());
        }
    }
    sc
}

/// Declare `count` channels `c0…` each carrying one slot `s0…`.
fn with_channels(mut m: ProgramModel, count: usize) -> ProgramModel {
    for i in 0..count {
        m = m
            .channel(format!("c{i}"))
            .slot(format!("s{i}"), Some(&format!("c{i}")));
    }
    m
}

/// One endpoint program (or `None` for an unprogrammed box), built over
/// channel `c0` / slot `s0`.
fn endpoint_program(rng: &mut FuzzRng) -> Option<ProgramModel> {
    let role = *rng.pick(&ENDPOINT_ROLES);
    let m = with_channels(ProgramModel::new(role), 1);
    let s0 = || "s0".to_string();
    match role {
        "unprogrammed" => None,
        "answerer" => {
            let mut linked = StateModel::new("linked")
                .final_state()
                .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s0"));
            let mut m = m;
            let decorated = rng.chance(1, 4);
            if decorated {
                linked = linked.on(ModelTrigger::User("bye".into()), "parting", vec![]);
            }
            m = m
                .state(StateModel::new("idle").on(ModelTrigger::SlotOpened(s0()), "linked", vec![]))
                .state(linked);
            if decorated {
                m = m
                    .state(
                        StateModel::new("parting")
                            .goal(GoalAnnotation::one(GoalKind::CloseSlot, "s0"))
                            .on(ModelTrigger::SlotClosed(s0()), "done", vec![]),
                    )
                    .state(StateModel::new("done").final_state());
            }
            Some(m)
        }
        "dialer" => {
            let timed = rng.chance(1, 4);
            let mut start_effects = vec![ModelEffect::OpenChannel("c0".into())];
            let mut m = m;
            if timed {
                m = m.timer("t0");
                start_effects.push(ModelEffect::SetTimer("t0".into()));
            }
            let mut dialing = StateModel::new("dialing")
                .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s0"))
                .on(ModelTrigger::SlotFlowing(s0()), "linked", vec![]);
            if timed {
                dialing = dialing.on(
                    ModelTrigger::Timer("t0".into()),
                    "gaveup",
                    vec![ModelEffect::CloseChannel("c0".into())],
                );
            }
            m = m
                .state(StateModel::new("idle").on(ModelTrigger::Start, "dialing", start_effects))
                .state(dialing)
                .state(
                    StateModel::new("linked")
                        .final_state()
                        .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s0")),
                );
            if timed {
                m = m.state(StateModel::new("gaveup").final_state());
            }
            Some(m)
        }
        "holder" => Some(
            m.state(StateModel::new("idle").on(ModelTrigger::SlotOpened(s0()), "holding", vec![]))
                .state(
                    StateModel::new("holding")
                        .final_state()
                        .goal(GoalAnnotation::one(GoalKind::HoldSlot, "s0")),
                ),
        ),
        "hangup" => Some(
            m.state(StateModel::new("idle").on(ModelTrigger::SlotOpened(s0()), "closing", vec![]))
                .state(
                    StateModel::new("closing")
                        .goal(GoalAnnotation::one(GoalKind::CloseSlot, "s0"))
                        .on(ModelTrigger::SlotClosed(s0()), "done", vec![]),
                )
                .state(StateModel::new("done").final_state()),
        ),
        "parked" => Some(
            m.state(StateModel::new("idle").on(ModelTrigger::SlotOpened(s0()), "parked", vec![]))
                .state(
                    StateModel::new("parked")
                        .goal(GoalAnnotation::one(GoalKind::HoldSlot, "s0"))
                        .on(ModelTrigger::User("resume".into()), "talking", vec![]),
                )
                .state(
                    StateModel::new("talking")
                        .final_state()
                        .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s0")),
                ),
        ),
        _ => Some(
            // "silent": programmed but never claims its slot.
            m.state(StateModel::new("idle").on(ModelTrigger::Start, "done", vec![]))
                .state(StateModel::new("done").final_state()),
        ),
    }
}

/// One relay program over `degree` channels, flowlinking slots `si`/`sj`
/// for a random distinct pair `(i, j)`. Extra slots (degree > 2) get an
/// `openSlot` claim at rest with probability 1/2 — the box doubles as an
/// endpoint toward those neighbors — and are otherwise left unclaimed.
fn relay_program(rng: &mut FuzzRng, degree: usize) -> ProgramModel {
    let role = *rng.pick(&RELAY_ROLES);
    let i = rng.range(degree);
    let j = (i + 1 + rng.range(degree - 1)) % degree;
    let (si, sj) = (format!("s{i}"), format!("s{j}"));
    let cj = format!("c{j}");
    let m = with_channels(ProgramModel::new(role), degree);
    // Claims for the pass-through slots this relay does not link.
    let extra_claims: Vec<GoalAnnotation> = (0..degree)
        .filter(|k| *k != i && *k != j)
        .filter(|_| rng.chance(1, 2))
        .map(|k| GoalAnnotation::one(GoalKind::OpenSlot, format!("s{k}")))
        .collect();
    let resting = |name: &str| {
        let mut st = StateModel::new(name)
            .final_state()
            .goal(GoalAnnotation::link(si.clone(), sj.clone()));
        for g in &extra_claims {
            st = st.goal(g.clone());
        }
        st
    };
    match role {
        "relay_all" => m.state(resting("linking")),
        "gated_relay" => m
            .state(StateModel::new("idle").on(
                ModelTrigger::SlotOpened(si.clone()),
                "linking",
                vec![ModelEffect::OpenChannel(cj)],
            ))
            .state(resting("linking")),
        "dial_through" => m
            .state(StateModel::new("idle").on(
                ModelTrigger::SlotOpened(si.clone()),
                "dialing",
                vec![ModelEffect::OpenChannel(cj.clone())],
            ))
            .state(
                StateModel::new("dialing")
                    .goal(GoalAnnotation::one(GoalKind::HoldSlot, si.clone()))
                    .on(ModelTrigger::ChannelUp(cj), "linked", vec![]),
            )
            .state(resting("linked")),
        _ => {
            // "hold_relay": parks the upstream slot first. Escapable holds
            // resume into a flowlink; wedged ones rest held forever — the
            // AZ503 population when something downstream wants flow.
            let escapable = rng.chance(3, 4);
            let mut held =
                StateModel::new("held").goal(GoalAnnotation::one(GoalKind::HoldSlot, si.clone()));
            if escapable {
                held = held.on(ModelTrigger::User("resume".into()), "linking", vec![]);
            } else {
                held = held.final_state();
            }
            let mut m = m.state(StateModel::new("idle").on(
                ModelTrigger::SlotOpened(si.clone()),
                "held",
                vec![ModelEffect::OpenChannel(cj)],
            ));
            m = m.state(held);
            if escapable {
                m = m.state(resting("linking"));
            }
            m
        }
    }
}

// ---------------------------------------------------------------------------
// Oracle
// ---------------------------------------------------------------------------

/// A covered-class key: `(links, left goal, right goal)` — the shape
/// [`crate::covered_classes`] normalizes scenarios onto, and the unit the
/// checker budget is shared across.
pub type ClassKey = (usize, EndGoal, EndGoal);

/// The checker's answer for one class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassVerdict {
    /// A safety or spec counterexample exists (within the explored prefix).
    pub counterexample: bool,
    /// The exploration cap was hit, so a clean result is only
    /// "no counterexample found so far".
    pub truncated: bool,
    /// States expanded.
    pub expanded: usize,
}

/// The oracle's view of the model checker: verdicts per covered class.
/// The mck-backed implementation is [`MckChecker`]; tests substitute
/// fakes to exercise both divergence directions.
pub trait ClassChecker {
    /// Verdict for one class.
    fn check(&mut self, key: ClassKey) -> ClassVerdict;

    /// Warm the checker for a batch of classes (hook for parallel
    /// backends; the default just checks serially).
    fn batch(&mut self, keys: &[ClassKey], _threads: usize) {
        for k in keys {
            self.check(*k);
        }
    }
}

/// The real oracle: each class key maps onto one
/// [`ipmedia_mck::CheckConfig`] (`flowlinks = links − 1`, minimal phase-1
/// budgets) explored under a depth-capped state budget, with verdicts
/// memoized so campaign-scale fan-in and shrinking both reuse results.
pub struct MckChecker {
    base: usize,
    cache: BTreeMap<ClassKey, ClassVerdict>,
}

impl MckChecker {
    /// New checker with a base exploration budget (states) for shallow
    /// classes; deeper classes get [`ipmedia_mck::depth_capped_states`]
    /// fractions of it.
    pub fn new(base: usize) -> Self {
        Self {
            base,
            cache: BTreeMap::new(),
        }
    }

    /// Number of distinct classes checked so far.
    pub fn checked(&self) -> usize {
        self.cache.len()
    }

    fn config_for(key: ClassKey) -> CheckConfig {
        budgeted(key.0.saturating_sub(1), key.1, key.2, 0)
    }
}

impl ClassChecker for MckChecker {
    fn check(&mut self, key: ClassKey) -> ClassVerdict {
        if let Some(v) = self.cache.get(&key) {
            return *v;
        }
        let res = run_campaign_depth_capped(&[Self::config_for(key)], self.base, 1);
        let v = ClassVerdict {
            counterexample: res[0].verdict_class().is_counterexample(),
            truncated: res[0].truncated,
            expanded: res[0].expanded,
        };
        self.cache.insert(key, v);
        v
    }

    fn batch(&mut self, keys: &[ClassKey], threads: usize) {
        let missing: Vec<ClassKey> = keys
            .iter()
            .copied()
            .filter(|k| !self.cache.contains_key(k))
            .collect();
        if missing.is_empty() {
            return;
        }
        let cfgs: Vec<CheckConfig> = missing.iter().map(|k| Self::config_for(*k)).collect();
        let results = run_campaign_depth_capped(&cfgs, self.base, threads);
        for (k, r) in missing.iter().zip(&results) {
            self.cache.insert(
                *k,
                ClassVerdict {
                    counterexample: r.verdict_class().is_counterexample(),
                    truncated: r.truncated,
                    expanded: r.expanded,
                },
            );
        }
    }
}

/// Human-readable label for a class key, e.g. `links=2 open/hold`.
pub fn class_label(key: ClassKey) -> String {
    let g = |e: EndGoal| match e {
        EndGoal::Open => "open",
        EndGoal::Close => "close",
        EndGoal::Hold => "hold",
    };
    format!("links={} {}/{}", key.0, g(key.1), g(key.2))
}

/// The sorted, deduplicated class keys a scenario covers (up to
/// `max_links` path length).
pub fn class_keys(sc: &ScenarioModel, max_links: usize) -> Vec<ClassKey> {
    let set: BTreeSet<ClassKey> = covered_classes_up_to(sc, max_links)
        .into_iter()
        .map(|c| (c.links, c.left, c.right))
        .collect();
    set.into_iter().collect()
}

// ---------------------------------------------------------------------------
// Campaign
// ---------------------------------------------------------------------------

/// Which oracle direction a divergence violates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceKind {
    /// `to_ipm` → `parse_scenario` did not reproduce the model.
    RoundTrip,
    /// Analyzer-clean scenario, but the checker refuted a covered class.
    Soundness,
    /// Checker counterexample on a covered class, but no `AZ5xx`/`AZ6xx`
    /// finding explains it.
    Completeness,
    /// The analyzer (or generator) panicked on a generated input.
    Panic,
}

impl DivergenceKind {
    /// Stable lowercase name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DivergenceKind::RoundTrip => "roundtrip",
            DivergenceKind::Soundness => "soundness",
            DivergenceKind::Completeness => "completeness",
            DivergenceKind::Panic => "panic",
        }
    }
}

/// One analyzer↔checker divergence, with its delta-minimized reproducer
/// when shrinking was enabled and succeeded.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Direction violated.
    pub kind: DivergenceKind,
    /// The scenario seed that produced it.
    pub seed: u64,
    /// One-line description (class label, codes seen, …).
    pub detail: String,
    /// The offending scenario as generated.
    pub scenario: ScenarioModel,
    /// The shrunken reproducer, if minimization ran.
    pub minimized: Option<ScenarioModel>,
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Number of scenarios to generate.
    pub scenarios: usize,
    /// Campaign seed (scenario `i` uses [`scenario_seed`]`(seed, i)`).
    pub seed: u64,
    /// Worker threads for generation/analysis and the checker batch
    /// (`0` = all cores). Results are identical at any value.
    pub threads: usize,
    /// Base checker budget in states (see [`MckChecker::new`]).
    pub max_states: usize,
    /// Path-length cap for covered classes.
    pub max_links: usize,
    /// Delta-minimize at most this many divergences.
    pub shrink_cap: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        Self {
            scenarios: 2_000,
            seed: 0xF022_DA7A,
            threads: 0,
            max_states: 2_000_000,
            max_links: MAX_COVERED_LINKS,
            shrink_cap: 8,
        }
    }
}

/// What one scenario contributed to the campaign.
#[derive(Debug, Clone, Default)]
struct Generated {
    seed: u64,
    scenario: ScenarioModel,
    /// Sorted, deduplicated error-severity codes.
    error_codes: Vec<String>,
    /// Sorted, deduplicated codes at any severity.
    codes: Vec<String>,
    classes: Vec<ClassKey>,
    roundtrip_ok: bool,
    panicked: bool,
}

/// Campaign outcome: aggregate statistics plus every divergence found.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Campaign seed.
    pub campaign_seed: u64,
    /// Scenarios generated.
    pub scenarios: usize,
    /// Scenarios with no error-severity finding.
    pub clean: usize,
    /// Scenarios with at least one error-severity finding.
    pub with_errors: usize,
    /// Scenarios failing the `.ipm` round-trip property.
    pub roundtrip_failures: usize,
    /// Scenarios per diagnostic code (counted once per scenario).
    pub code_counts: BTreeMap<String, usize>,
    /// Scenarios covering each class key.
    pub class_counts: BTreeMap<ClassKey, usize>,
    /// Checker verdict per unique class, in key order.
    pub checked: Vec<(ClassKey, ClassVerdict)>,
    /// Every oracle violation, in scenario order.
    pub divergences: Vec<Divergence>,
}

/// Promote every divergence in `report` into `dir` as a committed-fixture
/// candidate: the delta-minimized reproducer (falling back to the
/// as-generated scenario) written as `fuzz_promoted_<kind>_<seed>.ipm`
/// with a `#`-comment triage note. Promoted files re-parse with
/// [`parse_scenario`] (comments are ignored), so `planted.rs` can
/// register them directly. Returns the written paths, divergence order.
pub fn promote_divergences(
    report: &FuzzReport,
    dir: &std::path::Path,
) -> std::io::Result<Vec<std::path::PathBuf>> {
    use std::fmt::Write as _;
    std::fs::create_dir_all(dir)?;
    let mut paths = Vec::new();
    for d in &report.divergences {
        let repro = d.minimized.as_ref().unwrap_or(&d.scenario);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# fuzz-promoted divergence reproducer ({})",
            d.kind.name()
        );
        let _ = writeln!(
            out,
            "# campaign seed {:#018x}, scenario seed {:#018x}",
            report.campaign_seed, d.seed
        );
        let _ = writeln!(out, "# detail: {}", d.detail.replace('\n', " "));
        let _ = writeln!(
            out,
            "# weight {} -> {} after delta-minimization",
            scenario_weight(&d.scenario),
            scenario_weight(repro)
        );
        out.push_str(&to_ipm(repro));
        let path = dir.join(format!(
            "fuzz_promoted_{}_{:016x}.ipm",
            d.kind.name(),
            d.seed
        ));
        std::fs::write(&path, &out)?;
        paths.push(path);
    }
    Ok(paths)
}

impl FuzzReport {
    /// True iff the campaign found no divergence in either direction.
    pub fn is_clean_run(&self) -> bool {
        self.divergences.is_empty()
    }
}

/// Analyze one scenario into its campaign record.
fn record_for(seed: u64, max_links: usize) -> Generated {
    let sc = generate_scenario(seed);
    let diags = analyze_scenario(&sc);
    let mut error_codes: Vec<String> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .map(|d| d.code.to_string())
        .collect();
    error_codes.sort();
    error_codes.dedup();
    let mut codes: Vec<String> = diags.iter().map(|d| d.code.to_string()).collect();
    codes.sort();
    codes.dedup();
    let classes = class_keys(&sc, max_links);
    let roundtrip_ok = parse_scenario(&to_ipm(&sc)).is_ok_and(|p| p == sc);
    Generated {
        seed,
        scenario: sc,
        error_codes,
        codes,
        classes,
        roundtrip_ok,
        panicked: false,
    }
}

/// Does this record's code set contain an interprocedural finding that
/// could explain a checker counterexample?
fn has_interproc_finding(codes: &[String]) -> bool {
    codes
        .iter()
        .any(|c| c.starts_with("AZ5") || c.starts_with("AZ6"))
}

/// Run a full differential campaign. Phases:
///
/// 1. generate + analyze + round-trip every scenario (parallel,
///    slot-per-index, deterministic),
/// 2. union covered classes and batch-check them once,
/// 3. cross-examine analyzer and checker per scenario,
/// 4. delta-minimize the first [`FuzzConfig::shrink_cap`] divergences.
pub fn fuzz_campaign(cfg: &FuzzConfig, checker: &mut dyn ClassChecker) -> FuzzReport {
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        cfg.threads
    };
    let seeds: Vec<u64> = (0..cfg.scenarios as u64)
        .map(|i| scenario_seed(cfg.seed, i))
        .collect();

    // Phase 1: one record slot per seed; any panic becomes a divergence
    // rather than tearing the campaign down.
    let guarded = |seed: u64| {
        catch_unwind(AssertUnwindSafe(|| record_for(seed, cfg.max_links))).unwrap_or(Generated {
            seed,
            panicked: true,
            roundtrip_ok: true,
            ..Generated::default()
        })
    };
    let workers = threads.min(seeds.len()).max(1);
    let records: Vec<Generated> = if workers <= 1 {
        seeds.iter().map(|s| guarded(*s)).collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Generated>>> = seeds.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= seeds.len() {
                        break;
                    }
                    let rec = guarded(seeds[i]);
                    *slots[i].lock().expect("record slot") = Some(rec);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("record slot")
                    .expect("worker filled slot")
            })
            .collect()
    };

    // Phase 2: one checker run per unique class.
    let union: BTreeSet<ClassKey> = records.iter().flat_map(|r| r.classes.clone()).collect();
    let keys: Vec<ClassKey> = union.into_iter().collect();
    checker.batch(&keys, threads);
    let checked: Vec<(ClassKey, ClassVerdict)> =
        keys.iter().map(|k| (*k, checker.check(*k))).collect();
    let verdicts: BTreeMap<ClassKey, ClassVerdict> = checked.iter().copied().collect();

    // Phase 3: cross-examination.
    let mut divergences = Vec::new();
    let mut report = FuzzReport {
        campaign_seed: cfg.seed,
        scenarios: records.len(),
        clean: 0,
        with_errors: 0,
        roundtrip_failures: 0,
        code_counts: BTreeMap::new(),
        class_counts: BTreeMap::new(),
        checked,
        divergences: Vec::new(),
    };
    for rec in &records {
        if rec.panicked {
            divergences.push(Divergence {
                kind: DivergenceKind::Panic,
                seed: rec.seed,
                detail: "generator or analyzer panicked".into(),
                scenario: rec.scenario.clone(),
                minimized: None,
            });
            continue;
        }
        if rec.error_codes.is_empty() {
            report.clean += 1;
        } else {
            report.with_errors += 1;
        }
        for c in &rec.codes {
            *report.code_counts.entry(c.clone()).or_insert(0) += 1;
        }
        for k in &rec.classes {
            *report.class_counts.entry(*k).or_insert(0) += 1;
        }
        if !rec.roundtrip_ok {
            report.roundtrip_failures += 1;
            divergences.push(Divergence {
                kind: DivergenceKind::RoundTrip,
                seed: rec.seed,
                detail: "to_ipm → parse_scenario did not reproduce the model".into(),
                scenario: rec.scenario.clone(),
                minimized: None,
            });
        }
        let refuted: Vec<ClassKey> = rec
            .classes
            .iter()
            .copied()
            .filter(|k| verdicts.get(k).is_some_and(|v| v.counterexample))
            .collect();
        if let Some(k) = refuted.first() {
            if rec.error_codes.is_empty() {
                divergences.push(Divergence {
                    kind: DivergenceKind::Soundness,
                    seed: rec.seed,
                    detail: format!(
                        "analyzer-clean scenario maps onto refuted class {}",
                        class_label(*k)
                    ),
                    scenario: rec.scenario.clone(),
                    minimized: None,
                });
            } else if !has_interproc_finding(&rec.codes) {
                divergences.push(Divergence {
                    kind: DivergenceKind::Completeness,
                    seed: rec.seed,
                    detail: format!(
                        "checker refuted class {} but no AZ5xx/AZ6xx finding explains it (codes: {})",
                        class_label(*k),
                        rec.codes.join(", ")
                    ),
                    scenario: rec.scenario.clone(),
                    minimized: None,
                });
            }
        }
    }

    // Phase 4: shrink the first few divergences to small reproducers.
    for (i, d) in divergences.iter_mut().enumerate() {
        if i >= cfg.shrink_cap || d.kind == DivergenceKind::Panic {
            continue;
        }
        let kind = d.kind;
        let max_links = cfg.max_links;
        let mut pred = |sc: &ScenarioModel| divergence_reproduces(kind, sc, max_links, checker);
        d.minimized = Some(shrink_scenario(&d.scenario, &mut pred));
    }
    report.divergences = divergences;
    report
}

/// Does `sc` still exhibit a divergence of the given kind? (The shrink
/// predicate for [`fuzz_campaign`]'s minimization phase.)
pub fn divergence_reproduces(
    kind: DivergenceKind,
    sc: &ScenarioModel,
    max_links: usize,
    checker: &mut dyn ClassChecker,
) -> bool {
    match kind {
        DivergenceKind::RoundTrip => !parse_scenario(&to_ipm(sc)).is_ok_and(|p| p == *sc),
        DivergenceKind::Panic => catch_unwind(AssertUnwindSafe(|| analyze_scenario(sc))).is_err(),
        DivergenceKind::Soundness | DivergenceKind::Completeness => {
            let diags = analyze_scenario(sc);
            let clean = diags.iter().all(|d| d.severity != Severity::Error);
            let codes: Vec<String> = diags.iter().map(|d| d.code.to_string()).collect();
            let refuted = class_keys(sc, max_links)
                .into_iter()
                .any(|k| checker.check(k).counterexample);
            if kind == DivergenceKind::Soundness {
                clean && refuted
            } else {
                refuted && !has_interproc_finding(&codes)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Shrinker
// ---------------------------------------------------------------------------

/// Structural weight of a scenario: total element count across topology,
/// programs, and bindings. The shrinker only accepts strictly
/// weight-decreasing steps, so it terminates.
pub fn scenario_weight(sc: &ScenarioModel) -> usize {
    let mut w = sc.topology.boxes.len() + sc.topology.links.len() + sc.bindings.len();
    for (_, m) in &sc.programs {
        w += 1 + m.slots.len() + m.channels.len() + m.timers.len();
        for st in &m.states {
            w += 1 + st.goals.len();
            for t in &st.transitions {
                w += 1 + t.effects.len();
            }
        }
    }
    w
}

/// Every single-step reduction of `sc`, in a fixed deterministic order:
/// drop a box, a program, a binding, a state, a transition, a goal, an
/// effect, or an unreferenced declaration.
fn shrink_candidates(sc: &ScenarioModel) -> Vec<ScenarioModel> {
    let mut out = Vec::new();
    for b in &sc.topology.boxes {
        let mut c = sc.clone();
        if c.remove_box(b) {
            out.push(c);
        }
    }
    for (b, _) in &sc.programs {
        let mut c = sc.clone();
        if c.remove_program(b) {
            out.push(c);
        }
    }
    for i in 0..sc.bindings.len() {
        let mut c = sc.clone();
        c.bindings.remove(i);
        out.push(c);
    }
    for (pi, (_, m)) in sc.programs.iter().enumerate() {
        for st in &m.states {
            if st.name == m.initial {
                continue;
            }
            let mut c = sc.clone();
            if c.programs[pi].1.remove_state(&st.name) {
                out.push(c);
            }
        }
        for (si, st) in m.states.iter().enumerate() {
            for ti in 0..st.transitions.len() {
                let mut c = sc.clone();
                c.programs[pi].1.states[si].transitions.remove(ti);
                out.push(c);
            }
            for gi in 0..st.goals.len() {
                let mut c = sc.clone();
                c.programs[pi].1.states[si].goals.remove(gi);
                out.push(c);
            }
            for (ti, t) in st.transitions.iter().enumerate() {
                for ei in 0..t.effects.len() {
                    let mut c = sc.clone();
                    c.programs[pi].1.states[si].transitions[ti]
                        .effects
                        .remove(ei);
                    out.push(c);
                }
            }
        }
        for decl in unreferenced_decls(sc, m) {
            let mut c = sc.clone();
            let p = &mut c.programs[pi].1;
            match decl {
                Decl::Slot(ref s) => p.slots.retain(|d| &d.name != s),
                Decl::Channel(ref ch) => p.channels.retain(|d| d != ch),
                Decl::Timer(ref t) => p.timers.retain(|d| d != t),
            }
            out.push(c);
        }
    }
    out
}

/// A removable declaration.
enum Decl {
    Slot(String),
    Channel(String),
    Timer(String),
}

/// Declarations of `m` (attached to box `_b` in `sc`) that nothing
/// references: no trigger, effect, goal, slot-ride, or binding.
fn unreferenced_decls(sc: &ScenarioModel, m: &ProgramModel) -> Vec<Decl> {
    let mut used_slots = BTreeSet::new();
    let mut used_channels = BTreeSet::new();
    let mut used_timers = BTreeSet::new();
    for st in &m.states {
        for g in &st.goals {
            used_slots.extend(g.slots.iter().cloned());
        }
        for t in &st.transitions {
            if let Some(s) = t.trigger.slot() {
                used_slots.insert(s.to_string());
            }
            if let Some(c) = t.trigger.channel() {
                used_channels.insert(c.to_string());
            }
            if let Some(tm) = t.trigger.timer() {
                used_timers.insert(tm.to_string());
            }
            for e in &t.effects {
                match e {
                    ModelEffect::OpenChannel(c) | ModelEffect::CloseChannel(c) => {
                        used_channels.insert(c.clone());
                    }
                    ModelEffect::UserAction { slot, .. } => {
                        used_slots.insert(slot.clone());
                    }
                    ModelEffect::SetTimer(t) | ModelEffect::CancelTimer(t) => {
                        used_timers.insert(t.clone());
                    }
                    ModelEffect::Terminate => {}
                }
            }
        }
    }
    for s in &m.slots {
        if let Some(c) = &s.channel {
            if used_slots.contains(&s.name) {
                used_channels.insert(c.clone());
            }
        }
    }
    for b in &sc.bindings {
        used_channels.insert(b.channel.clone());
    }
    let mut out = Vec::new();
    for s in &m.slots {
        if !used_slots.contains(&s.name) {
            out.push(Decl::Slot(s.name.clone()));
        }
    }
    for c in &m.channels {
        if !used_channels.contains(c) {
            out.push(Decl::Channel(c.clone()));
        }
    }
    for t in &m.timers {
        if !used_timers.contains(t) {
            out.push(Decl::Timer(t.clone()));
        }
    }
    out
}

/// Greedy deterministic delta-minimization: repeatedly apply the first
/// single-step reduction that keeps `interesting` true and strictly
/// decreases [`scenario_weight`], until no step applies. The input is
/// returned unchanged if it is not interesting to begin with.
pub fn shrink_scenario(
    sc: &ScenarioModel,
    interesting: &mut dyn FnMut(&ScenarioModel) -> bool,
) -> ScenarioModel {
    if !interesting(sc) {
        return sc.clone();
    }
    let mut current = sc.clone();
    loop {
        let w = scenario_weight(&current);
        let step = shrink_candidates(&current)
            .into_iter()
            .find(|c| scenario_weight(c) < w && interesting(c));
        match step {
            Some(next) => current = next,
            None => return current,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wellformed;

    #[test]
    fn rng_is_deterministic_and_spread() {
        let mut a = FuzzRng::new(7);
        let mut b = FuzzRng::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        let distinct: BTreeSet<u64> = xs.iter().copied().collect();
        assert_eq!(distinct.len(), xs.len());
    }

    #[test]
    fn generated_scenarios_are_valid_by_construction() {
        for i in 0..300 {
            let sc = generate_scenario(scenario_seed(1, i));
            for (b, m) in &sc.programs {
                assert!(
                    m.validate().is_empty(),
                    "seed {i} box {b}: {:?}",
                    m.validate()
                );
                assert!(m.is_deterministic(), "seed {i} box {b}");
            }
            let topo_errors: Vec<_> = wellformed::analyze(&sc)
                .into_iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            assert!(topo_errors.is_empty(), "seed {i}: {topo_errors:?}");
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_seed() {
        let s = scenario_seed(42, 3);
        assert_eq!(generate_scenario(s), generate_scenario(s));
        assert_ne!(
            generate_scenario(scenario_seed(42, 3)),
            generate_scenario(scenario_seed(42, 4))
        );
    }

    /// A fake checker with scripted verdicts, for oracle-direction tests.
    struct Scripted {
        refuted: BTreeSet<ClassKey>,
    }

    impl ClassChecker for Scripted {
        fn check(&mut self, key: ClassKey) -> ClassVerdict {
            ClassVerdict {
                counterexample: self.refuted.contains(&key),
                truncated: false,
                expanded: 1,
            }
        }
    }

    #[test]
    fn soundness_direction_fires_when_checker_refutes_a_clean_scenario() {
        // Make every class refuted: any clean scenario that covers at
        // least one class must produce a Soundness divergence.
        let mut refuted = BTreeSet::new();
        for links in 1..=4 {
            for l in [EndGoal::Open, EndGoal::Close, EndGoal::Hold] {
                for r in [EndGoal::Open, EndGoal::Close, EndGoal::Hold] {
                    refuted.insert((links, l, r));
                }
            }
        }
        let mut checker = Scripted { refuted };
        let cfg = FuzzConfig {
            scenarios: 60,
            seed: 11,
            threads: 1,
            shrink_cap: 0,
            ..FuzzConfig::default()
        };
        let report = fuzz_campaign(&cfg, &mut checker);
        assert!(report.clean > 0, "campaign produced no clean scenarios");
        assert!(
            report
                .divergences
                .iter()
                .any(|d| d.kind == DivergenceKind::Soundness),
            "no soundness divergence despite universally refuting checker"
        );
        // And the dual: findings-bearing scenarios without AZ5xx/AZ6xx
        // explanations surface as completeness misses.
        assert!(report.divergences.iter().all(|d| matches!(
            d.kind,
            DivergenceKind::Soundness | DivergenceKind::Completeness
        )));
    }

    #[test]
    fn honest_checker_yields_no_divergence_on_a_small_campaign() {
        let mut checker = Scripted {
            refuted: BTreeSet::new(),
        };
        let cfg = FuzzConfig {
            scenarios: 40,
            seed: 5,
            threads: 1,
            shrink_cap: 0,
            ..FuzzConfig::default()
        };
        let report = fuzz_campaign(&cfg, &mut checker);
        assert!(report.is_clean_run(), "{:?}", report.divergences);
        assert_eq!(report.scenarios, 40);
        assert_eq!(report.clean + report.with_errors, 40);
        assert_eq!(report.roundtrip_failures, 0);
    }

    #[test]
    fn campaign_reports_are_identical_across_thread_counts() {
        let run = |threads| {
            let mut checker = Scripted {
                refuted: BTreeSet::new(),
            };
            let cfg = FuzzConfig {
                scenarios: 50,
                seed: 99,
                threads,
                shrink_cap: 0,
                ..FuzzConfig::default()
            };
            let r = fuzz_campaign(&cfg, &mut checker);
            (r.clean, r.with_errors, r.code_counts, r.class_counts)
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn shrinker_minimizes_to_a_small_reproducer() {
        // Interest: the scenario still has a box with a program whose
        // some state carries a holdSlot goal. The shrinker should strip
        // everything else.
        let sc = generate_scenario(
            (0..1_000)
                .map(|i| scenario_seed(7, i))
                .find(|s| {
                    let sc = generate_scenario(*s);
                    sc.programs.iter().any(|(_, m)| {
                        m.states
                            .iter()
                            .any(|st| st.goals.iter().any(|g| g.kind == GoalKind::HoldSlot))
                    }) && sc.topology.boxes.len() >= 4
                })
                .expect("a holdy scenario exists"),
        );
        let mut pred = |c: &ScenarioModel| {
            c.programs.iter().any(|(_, m)| {
                m.states
                    .iter()
                    .any(|st| st.goals.iter().any(|g| g.kind == GoalKind::HoldSlot))
            })
        };
        let small = shrink_scenario(&sc, &mut pred);
        assert!(pred(&small));
        assert!(scenario_weight(&small) < scenario_weight(&sc));
        // The reproducer keeps exactly what the predicate needs: one box.
        assert_eq!(small.topology.boxes.len(), 1, "{small:?}");
        assert_eq!(small.programs.len(), 1);
    }

    #[test]
    fn shrinker_returns_input_when_not_interesting() {
        let sc = generate_scenario(scenario_seed(1, 0));
        let mut never = |_: &ScenarioModel| false;
        assert_eq!(shrink_scenario(&sc, &mut never), sc);
    }

    #[test]
    fn mck_checker_memoizes_class_verdicts() {
        let mut checker = MckChecker::new(50_000);
        let key = (1, EndGoal::Close, EndGoal::Close);
        let first = checker.check(key);
        assert_eq!(checker.checked(), 1);
        let second = checker.check(key);
        assert_eq!(first, second);
        assert_eq!(checker.checked(), 1);
        assert!(
            !first.counterexample,
            "close/close passes the paper campaign"
        );
    }
}
