//! Pass 2: goal-conflict detection (`AZ2xx`).
//!
//! In the paper's architecture each slot is read and written by exactly
//! one goal object at a time (§IV): two live goals claiming the same slot
//! race on its signals. The pass inspects every program state's §IV-A
//! annotations:
//!
//! * `AZ201` (error) — a slot claimed by two goals with incompatible
//!   intents (one wants media flowing, the other parks or tears down the
//!   channel — e.g. `holdSlot` vs `flowLink` — or any pairing with
//!   `closeSlot`, or two distinct `flowLink`s fighting over one slot);
//! * `AZ202` (warning) — a slot claimed twice with the *same* intent
//!   (redundant, and still a signal-ownership race);
//! * `AZ203` (error) — a `flowLink` linking a slot to itself.

use crate::diag::Diagnostic;
use ipmedia_core::program::model::{GoalAnnotation, ProgramModel};
use ipmedia_core::GoalKind;
use std::collections::BTreeMap;

fn incompatible(a: &GoalAnnotation, b: &GoalAnnotation) -> bool {
    // closeSlot tears the channel down; nothing can share a slot with it.
    a.kind == GoalKind::CloseSlot
        || b.kind == GoalKind::CloseSlot
        || a.kind.wants_flow() != b.kind.wants_flow()
        // Two flowlinks would splice the slot into two different flows.
        || (a.kind == GoalKind::FlowLink && b.kind == GoalKind::FlowLink)
}

/// Run the conflict pass over every state of the model.
pub fn analyze(model: &ProgramModel) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for st in &model.states {
        for g in &st.goals {
            if g.kind == GoalKind::FlowLink && g.slots.len() == 2 && g.slots[0] == g.slots[1] {
                diags.push(
                    Diagnostic::error(
                        "AZ203",
                        format!("flowLink links slot `{}` to itself", g.slots[0]),
                    )
                    .in_program(&model.name)
                    .at_state(&st.name),
                );
            }
        }
        let mut claims: BTreeMap<&str, Vec<&GoalAnnotation>> = BTreeMap::new();
        for g in &st.goals {
            for slot in &g.slots {
                claims.entry(slot.as_str()).or_default().push(g);
            }
        }
        for (slot, goals) in claims {
            for (i, a) in goals.iter().enumerate() {
                for b in &goals[i + 1..] {
                    if std::ptr::eq(*a, *b) {
                        continue; // self-link already reported as AZ203
                    }
                    let d = if incompatible(a, b) {
                        Diagnostic::error(
                            "AZ201",
                            format!("slot `{slot}` is claimed by conflicting goals {a} and {b}"),
                        )
                        .with_note(
                            "each slot is read and written by exactly one goal object; \
                             these two would race on its signals"
                                .to_string(),
                        )
                    } else {
                        Diagnostic::warning(
                            "AZ202",
                            format!("slot `{slot}` is claimed twice ({a} and {b})"),
                        )
                    };
                    diags.push(d.in_program(&model.name).at_state(&st.name));
                }
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipmedia_core::program::model::StateModel;

    fn state_with(goals: Vec<GoalAnnotation>) -> ProgramModel {
        let mut st = StateModel::new("s").final_state();
        for g in goals {
            st = st.goal(g);
        }
        ProgramModel::new("p")
            .slot("a", None)
            .slot("b", None)
            .slot("c", None)
            .state(st)
    }

    #[test]
    fn hold_vs_flowlink_conflicts() {
        let m = state_with(vec![
            GoalAnnotation::one(GoalKind::HoldSlot, "a"),
            GoalAnnotation::link("a", "b"),
        ]);
        let diags = analyze(&m);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "AZ201" && d.message.contains("`a`")),
            "{diags:?}"
        );
    }

    #[test]
    fn close_slot_conflicts_with_anything() {
        let m = state_with(vec![
            GoalAnnotation::one(GoalKind::CloseSlot, "a"),
            GoalAnnotation::one(GoalKind::HoldSlot, "a"),
        ]);
        assert!(analyze(&m).iter().any(|d| d.code == "AZ201"));
    }

    #[test]
    fn two_flowlinks_on_one_slot_conflict() {
        let m = state_with(vec![
            GoalAnnotation::link("a", "b"),
            GoalAnnotation::link("a", "c"),
        ]);
        assert!(analyze(&m).iter().any(|d| d.code == "AZ201"));
    }

    #[test]
    fn self_link_reported() {
        let m = state_with(vec![GoalAnnotation::link("a", "a")]);
        let diags = analyze(&m);
        assert!(diags.iter().any(|d| d.code == "AZ203"), "{diags:?}");
        assert!(!diags.iter().any(|d| d.code == "AZ201"), "{diags:?}");
    }

    #[test]
    fn duplicate_same_intent_is_a_warning() {
        let m = state_with(vec![
            GoalAnnotation::one(GoalKind::OpenSlot, "a"),
            GoalAnnotation::one(GoalKind::OpenSlot, "a"),
        ]);
        let diags = analyze(&m);
        assert!(diags.iter().any(|d| d.code == "AZ202"), "{diags:?}");
    }

    #[test]
    fn disjoint_goals_are_clean() {
        let m = state_with(vec![
            GoalAnnotation::link("a", "b"),
            GoalAnnotation::one(GoalKind::HoldSlot, "c"),
        ]);
        assert!(analyze(&m).is_empty());
    }
}
