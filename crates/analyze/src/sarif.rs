//! SARIF 2.1.0 export and baseline suppression, so `ipmedia-lint` plugs
//! into CI code-scanning UIs and existing findings can be grandfathered
//! without turning the gate off.
//!
//! * [`to_sarif`] renders a diagnostic set as one minimal SARIF 2.1.0
//!   log: a single run of the `ipmedia-lint` driver, one reporting rule
//!   per distinct code, one result per finding with its
//!   `scenario/program/state` path as a logical location and the
//!   [`Diagnostic::fingerprint`] as a partial fingerprint.
//! * A [`Baseline`] is a plain-text file of fingerprints (one per line,
//!   `#` comments); [`Baseline::apply`] splits a report into kept and
//!   suppressed findings. Fingerprints are `code@location`, so a
//!   baseline survives message rewording but not moving a finding.

use crate::diag::{Diagnostic, Severity};
use ipmedia_obs::{json_array, JsonObj};
use std::collections::BTreeSet;

/// Render diagnostics as a SARIF 2.1.0 log (pretty-stable: results keep
/// the input order, rules are sorted by code).
pub fn to_sarif(diags: &[Diagnostic]) -> String {
    let codes: BTreeSet<&str> = diags.iter().map(|d| d.code).collect();
    let rules = json_array(codes.into_iter().map(|c| {
        JsonObj::new()
            .str("id", c)
            .raw(
                "defaultConfiguration",
                &JsonObj::new().str("level", "warning").finish(),
            )
            .finish()
    }));
    let results = json_array(diags.iter().map(|d| {
        let level = match d.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let mut msg = d.message.clone();
        if let Some(note) = &d.note {
            msg.push_str("; note: ");
            msg.push_str(note);
        }
        let location = JsonObj::new()
            .raw(
                "logicalLocations",
                &json_array([JsonObj::new()
                    .str("fullyQualifiedName", &d.location())
                    .finish()]),
            )
            .finish();
        JsonObj::new()
            .str("ruleId", d.code)
            .str("level", level)
            .raw("message", &JsonObj::new().str("text", &msg).finish())
            .raw("locations", &json_array([location]))
            .raw(
                "partialFingerprints",
                &JsonObj::new()
                    .str("ipmediaLint/v1", &d.fingerprint())
                    .finish(),
            )
            .finish()
    }));
    let driver = JsonObj::new()
        .str("name", "ipmedia-lint")
        .str("informationUri", "https://github.com/ipmedia/ipmedia")
        .raw("rules", &rules)
        .finish();
    let run = JsonObj::new()
        .raw("tool", &JsonObj::new().raw("driver", &driver).finish())
        .raw("results", &results)
        .finish();
    JsonObj::new()
        .str("$schema", "https://json.schemastore.org/sarif-2.1.0.json")
        .str("version", "2.1.0")
        .raw("runs", &json_array([run]))
        .finish()
}

/// A set of suppressed finding fingerprints.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    fingerprints: BTreeSet<String>,
}

impl Baseline {
    /// Parse a baseline file: one fingerprint per line, blank lines and
    /// `#` comments ignored.
    pub fn parse(src: &str) -> Self {
        let fingerprints = src
            .lines()
            .filter_map(|l| {
                let l = l.split('#').next().unwrap_or("").trim();
                (!l.is_empty()).then(|| l.to_string())
            })
            .collect();
        Self { fingerprints }
    }

    /// Number of fingerprints in the baseline.
    pub fn len(&self) -> usize {
        self.fingerprints.len()
    }

    /// True iff the baseline suppresses nothing.
    pub fn is_empty(&self) -> bool {
        self.fingerprints.is_empty()
    }

    /// True iff `d`'s fingerprint is suppressed.
    pub fn suppresses(&self, d: &Diagnostic) -> bool {
        self.fingerprints.contains(&d.fingerprint())
    }

    /// Split a report into `(kept, suppressed)`, preserving order.
    pub fn apply(&self, diags: Vec<Diagnostic>) -> (Vec<Diagnostic>, Vec<Diagnostic>) {
        diags.into_iter().partition(|d| !self.suppresses(d))
    }

    /// Fingerprints in the baseline that match none of `diags` — stale
    /// suppressions whose underlying finding was since fixed (or moved).
    /// `diags` must be the full pre-baseline report (kept + suppressed).
    pub fn stale(&self, diags: &[Diagnostic]) -> Vec<String> {
        let live: BTreeSet<String> = diags.iter().map(Diagnostic::fingerprint).collect();
        self.fingerprints
            .iter()
            .filter(|fp| !live.contains(*fp))
            .cloned()
            .collect()
    }

    /// A copy with the stale fingerprints (per [`Baseline::stale`])
    /// removed, for `--prune-baseline`.
    pub fn pruned(&self, diags: &[Diagnostic]) -> Self {
        let live: BTreeSet<String> = diags.iter().map(Diagnostic::fingerprint).collect();
        Self {
            fingerprints: self
                .fingerprints
                .iter()
                .filter(|fp| live.contains(*fp))
                .cloned()
                .collect(),
        }
    }

    /// Render this baseline back as file text (same header and sorted
    /// form as [`Baseline::render`]).
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "# ipmedia-lint baseline: one suppressed finding fingerprint per line.\n\
             # Fingerprints are code@scenario/program/state; `#` starts a comment.\n",
        );
        for fp in &self.fingerprints {
            out.push_str(fp);
            out.push('\n');
        }
        out
    }

    /// Render a report as baseline-file text (dedup'd, sorted), for
    /// `--write-baseline`.
    pub fn render(diags: &[Diagnostic]) -> String {
        let mut out = String::from(
            "# ipmedia-lint baseline: one suppressed finding fingerprint per line.\n\
             # Fingerprints are code@scenario/program/state; `#` starts a comment.\n",
        );
        let fps: BTreeSet<String> = diags.iter().map(Diagnostic::fingerprint).collect();
        for fp in fps {
            out.push_str(&fp);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Diagnostic> {
        vec![
            Diagnostic::error("AZ501", "chain cannot converge")
                .in_scenario("s")
                .in_program("p")
                .at_state("q"),
            Diagnostic::warning("AZ602", "close can cross")
                .in_scenario("s")
                .in_program("p2")
                .with_note("add an escape"),
        ]
    }

    #[test]
    fn sarif_log_has_schema_rules_and_results() {
        let log = to_sarif(&sample());
        assert!(log.contains("\"version\":\"2.1.0\""), "{log}");
        assert!(log.contains("sarif-2.1.0.json"), "{log}");
        assert!(log.contains("\"ruleId\":\"AZ501\""), "{log}");
        assert!(log.contains("\"level\":\"error\""), "{log}");
        assert!(log.contains("\"fullyQualifiedName\":\"s/p/q\""), "{log}");
        assert!(log.contains("\"ipmediaLint/v1\":\"AZ501@s/p/q\""), "{log}");
        // Notes are folded into the message text.
        assert!(log.contains("add an escape"), "{log}");
    }

    #[test]
    fn empty_report_is_a_valid_empty_run() {
        let log = to_sarif(&[]);
        assert!(log.contains("\"results\":[]"), "{log}");
    }

    #[test]
    fn baseline_round_trips_and_suppresses() {
        let diags = sample();
        let text = Baseline::render(&diags);
        let base = Baseline::parse(&text);
        assert_eq!(base.len(), 2);
        let (kept, suppressed) = base.apply(diags);
        assert!(kept.is_empty(), "{kept:?}");
        assert_eq!(suppressed.len(), 2);
    }

    #[test]
    fn baseline_ignores_comments_and_misses() {
        let base = Baseline::parse("# header\n\nAZ501@s/p/q # old finding\n");
        assert_eq!(base.len(), 1);
        let (kept, suppressed) = base.apply(sample());
        assert_eq!(kept.len(), 1);
        assert_eq!(suppressed.len(), 1);
        assert_eq!(kept[0].code, "AZ602");
    }

    #[test]
    fn stale_fingerprints_are_detected_and_pruned() {
        let diags = sample();
        let base = Baseline::parse("AZ501@s/p/q\nAZ999@gone/away # fixed long ago\n");
        let stale = base.stale(&diags);
        assert_eq!(stale, vec!["AZ999@gone/away".to_string()]);
        let pruned = base.pruned(&diags);
        assert_eq!(pruned.len(), 1);
        assert!(pruned.stale(&diags).is_empty());
        let text = pruned.to_text();
        assert!(text.contains("AZ501@s/p/q"), "{text}");
        assert!(!text.contains("AZ999"), "{text}");
        // to_text/parse round-trips.
        assert_eq!(Baseline::parse(&text), pruned);
    }

    #[test]
    fn empty_baseline_keeps_everything() {
        let base = Baseline::parse("# nothing suppressed\n");
        assert!(base.is_empty());
        let (kept, suppressed) = base.apply(sample());
        assert_eq!(kept.len(), 2);
        assert!(suppressed.is_empty());
    }
}
