//! Parser and emitter for the `.ipm` scenario text format, so
//! `ipmedia-lint` can analyze serialized models as well as the built-in
//! example registry, and the fuzz harness can round-trip generated
//! models ([`to_ipm`] then [`parse_scenario`] is the identity on any
//! scenario with token-safe names).
//!
//! The format is line-oriented; `#` starts a comment. Triggers and
//! effects use the same concrete syntax the model types `Display` with,
//! so diagnostics and sources read alike:
//!
//! ```text
//! scenario demo
//! box ua
//! box peer
//! link ua peer 1
//!
//! program ua
//!   channel c
//!   slot s c
//!   timer t
//!   state init
//!     goal openSlot s
//!     on start -> waiting ! openChannel(c); setTimer(t)
//!   state waiting final
//!     goal flowLink s s2     # (two slot names for flowLink)
//! ```

use ipmedia_core::path::Topology;
use ipmedia_core::program::model::{
    GoalAnnotation, ModelEffect, ModelTrigger, ProgramModel, ScenarioModel, StateModel,
    TransitionModel,
};
use ipmedia_core::{GoalKind, SlotAction};

/// Parse error: line number (1-based) plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line the error is on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Split `name(arg)` into `(name, arg)`; a bare word has an empty arg.
fn call(token: &str) -> (&str, &str) {
    match token.find('(') {
        Some(i) if token.ends_with(')') => (&token[..i], &token[i + 1..token.len() - 1]),
        _ => (token, ""),
    }
}

fn parse_trigger(token: &str, line: usize) -> Result<ModelTrigger, ParseError> {
    let (name, arg) = call(token);
    let need = |what: &str| -> Result<String, ParseError> {
        if arg.is_empty() {
            Err(err(
                line,
                format!("trigger `{name}` needs a {what} argument"),
            ))
        } else {
            Ok(arg.to_string())
        }
    };
    Ok(match name {
        "start" => ModelTrigger::Start,
        "channelUp" => ModelTrigger::ChannelUp(need("channel")?),
        "channelDown" => ModelTrigger::ChannelDown(need("channel")?),
        "peerAvailable" => ModelTrigger::PeerAvailable(need("channel")?),
        "peerUnavailable" => ModelTrigger::PeerUnavailable(need("channel")?),
        "isOpened" => ModelTrigger::SlotOpened(need("slot")?),
        "isFlowing" => ModelTrigger::SlotFlowing(need("slot")?),
        "isClosed" => ModelTrigger::SlotClosed(need("slot")?),
        "timer" => ModelTrigger::Timer(need("timer")?),
        "app" => ModelTrigger::App(need("event")?),
        "user" => ModelTrigger::User(need("event")?),
        other => return Err(err(line, format!("unknown trigger `{other}`"))),
    })
}

fn parse_effect(token: &str, line: usize) -> Result<ModelEffect, ParseError> {
    let (name, arg) = call(token);
    let need = |what: &str| -> Result<String, ParseError> {
        if arg.is_empty() {
            Err(err(
                line,
                format!("effect `{name}` needs a {what} argument"),
            ))
        } else {
            Ok(arg.to_string())
        }
    };
    let action = |a: SlotAction| -> Result<ModelEffect, ParseError> {
        Ok(ModelEffect::UserAction {
            slot: need("slot")?,
            action: a,
        })
    };
    match name {
        "openChannel" => Ok(ModelEffect::OpenChannel(need("channel")?)),
        "closeChannel" => Ok(ModelEffect::CloseChannel(need("channel")?)),
        "setTimer" => Ok(ModelEffect::SetTimer(need("timer")?)),
        "cancelTimer" => Ok(ModelEffect::CancelTimer(need("timer")?)),
        "terminate" => Ok(ModelEffect::Terminate),
        "open" => action(SlotAction::Open),
        "accept" => action(SlotAction::Accept),
        "select" => action(SlotAction::Select),
        "describe" => action(SlotAction::Describe),
        "close" => action(SlotAction::Close),
        other => Err(err(line, format!("unknown effect `{other}`"))),
    }
}

fn parse_goal_kind(token: &str, line: usize) -> Result<GoalKind, ParseError> {
    GoalKind::ALL
        .into_iter()
        .find(|k| k.name() == token)
        .ok_or_else(|| err(line, format!("unknown goal kind `{token}`")))
}

/// Parse a full `.ipm` scenario source.
pub fn parse_scenario(src: &str) -> Result<ScenarioModel, ParseError> {
    let mut scenario = ScenarioModel::new("scenario");
    let mut topology = Topology::new();
    // (box name, program under construction, state under construction)
    let mut program: Option<(String, ProgramModel)> = None;
    let mut state: Option<StateModel> = None;

    let flush_state = |program: &mut Option<(String, ProgramModel)>,
                       state: &mut Option<StateModel>| {
        if let (Some((_, m)), Some(st)) = (program.as_mut(), state.take()) {
            let built = std::mem::take(m);
            *m = built.state(st);
        }
    };
    let flush_program = |scenario: &mut ScenarioModel,
                         program: &mut Option<(String, ProgramModel)>,
                         state: &mut Option<StateModel>| {
        flush_state(program, state);
        if let Some((box_name, m)) = program.take() {
            let built = std::mem::take(scenario);
            *scenario = built.program(box_name, m);
        }
    };

    for (idx, raw) in src.lines().enumerate() {
        let line = idx + 1;
        let text = raw.split('#').next().unwrap_or("").trim();
        if text.is_empty() {
            continue;
        }
        let mut words = text.split_whitespace();
        let keyword = words.next().unwrap_or("");
        let rest: Vec<&str> = words.collect();
        match keyword {
            "scenario" => {
                let name = rest
                    .first()
                    .ok_or_else(|| err(line, "scenario needs a name"))?;
                scenario.name = (*name).to_string();
            }
            "box" => {
                let name = rest.first().ok_or_else(|| err(line, "box needs a name"))?;
                topology = topology.with_box(*name);
            }
            "link" => {
                let [from, to, tunnels] = rest.as_slice() else {
                    return Err(err(line, "link needs: link <from> <to> <tunnels>"));
                };
                let n: u16 = tunnels
                    .parse()
                    .map_err(|_| err(line, format!("bad tunnel count `{tunnels}`")))?;
                topology = topology.with_link(*from, *to, n);
            }
            "bind" => {
                let [box_name, channel, peer] = rest.as_slice() else {
                    return Err(err(line, "bind needs: bind <box> <channel> <peer>"));
                };
                scenario = scenario.bind(*box_name, *channel, *peer);
            }
            "program" => {
                flush_program(&mut scenario, &mut program, &mut state);
                let box_name = rest
                    .first()
                    .ok_or_else(|| err(line, "program needs a box name"))?;
                // `program <box> [<model-name>]`: the optional second word
                // keeps models whose name differs from their box (the
                // registry's `click_to_dial` on box `ctd`) round-trippable.
                let model_name = rest.get(1).copied().unwrap_or(box_name);
                program = Some(((*box_name).to_string(), ProgramModel::new(model_name)));
            }
            "initial" => {
                let Some((_, m)) = program.as_mut() else {
                    return Err(err(line, "`initial` outside a program"));
                };
                let name = rest
                    .first()
                    .ok_or_else(|| err(line, "initial needs a state name"))?;
                m.initial = (*name).to_string();
            }
            "channel" | "slot" | "timer" => {
                let Some((_, m)) = program.as_mut() else {
                    return Err(err(line, format!("`{keyword}` outside a program")));
                };
                // Declarations must precede states (states are flushed in
                // order, so late declarations would be fine structurally,
                // but the format keeps them grouped for readability).
                let name = rest
                    .first()
                    .ok_or_else(|| err(line, format!("{keyword} needs a name")))?;
                let built = std::mem::take(m);
                *m = match keyword {
                    "channel" => built.channel(*name),
                    "slot" => built.slot(*name, rest.get(1).copied()),
                    _ => built.timer(*name),
                };
            }
            "state" => {
                if program.is_none() {
                    return Err(err(line, "`state` outside a program"));
                }
                flush_state(&mut program, &mut state);
                let name = rest
                    .first()
                    .ok_or_else(|| err(line, "state needs a name"))?;
                let mut st = StateModel::new(*name);
                match rest.get(1) {
                    Some(&"final") => st = st.final_state(),
                    Some(other) => {
                        return Err(err(line, format!("unexpected `{other}` after state name")))
                    }
                    None => {}
                }
                state = Some(st);
            }
            "goal" => {
                let Some(st) = state.as_mut() else {
                    return Err(err(line, "`goal` outside a state"));
                };
                let kind_tok = rest.first().ok_or_else(|| err(line, "goal needs a kind"))?;
                let kind = parse_goal_kind(kind_tok, line)?;
                let slots: Vec<String> = rest[1..].iter().map(|s| (*s).to_string()).collect();
                if slots.is_empty() {
                    return Err(err(line, "goal needs at least one slot"));
                }
                st.goals.push(GoalAnnotation { kind, slots });
            }
            "on" => {
                let Some(st) = state.as_mut() else {
                    return Err(err(line, "`on` outside a state"));
                };
                // on <trigger> -> <target> [! <effect>; <effect>...]
                let arrow = rest
                    .iter()
                    .position(|w| *w == "->")
                    .ok_or_else(|| err(line, "transition needs `->`"))?;
                if arrow != 1 {
                    return Err(err(
                        line,
                        "transition needs exactly one trigger before `->`",
                    ));
                }
                let trigger = parse_trigger(rest[0], line)?;
                let target = rest
                    .get(arrow + 1)
                    .ok_or_else(|| err(line, "transition needs a target state"))?;
                let mut effects = Vec::new();
                match rest.get(arrow + 2) {
                    None => {}
                    Some(&"!") => {
                        let effect_src = rest[arrow + 3..].join(" ");
                        for tok in effect_src.split(';') {
                            let tok = tok.trim();
                            if !tok.is_empty() {
                                effects.push(parse_effect(tok, line)?);
                            }
                        }
                    }
                    Some(other) => {
                        return Err(err(
                            line,
                            format!("expected `!` before effects, got `{other}`"),
                        ))
                    }
                }
                st.transitions.push(TransitionModel {
                    trigger,
                    to: (*target).to_string(),
                    effects,
                });
            }
            other => return Err(err(line, format!("unknown keyword `{other}`"))),
        }
    }
    flush_program(&mut scenario, &mut program, &mut state);
    Ok(scenario.with_topology(topology))
}

/// Serialize a scenario to `.ipm` text, the exact inverse of
/// [`parse_scenario`]: `parse_scenario(&to_ipm(sc)) == Ok(sc)` for every
/// scenario whose names are *token-safe* (no whitespace, `#`, `(`, or
/// `)` — the format has no escaping, so such names are unrepresentable).
/// The fuzz generator only produces token-safe names; the round-trip
/// property test in `tests/fuzz_props.rs` pins the identity.
pub fn to_ipm(sc: &ScenarioModel) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "scenario {}", sc.name);
    out.push_str(&topology_ipm(sc));
    for (box_name, m) in &sc.programs {
        let _ = writeln!(out);
        out.push_str(&program_ipm(box_name, m));
    }
    out
}

/// The topology-and-bindings section of [`to_ipm`]: `box`, `link`, and
/// `bind` lines. Factored out so content-addressed fingerprints can hash
/// exactly the text the emitter would produce for the cross-box structure
/// ([`crate::incremental::topology_fingerprint`]).
pub fn topology_ipm(sc: &ScenarioModel) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for b in &sc.topology.boxes {
        let _ = writeln!(out, "box {b}");
    }
    for l in &sc.topology.links {
        let _ = writeln!(out, "link {} {} {}", l.from, l.to, l.tunnels);
    }
    for b in &sc.bindings {
        let _ = writeln!(out, "bind {} {} {}", b.box_name, b.channel, b.peer);
    }
    out
}

/// One `program` section of [`to_ipm`], for the program attached to
/// `box_name`. Factored out so per-program fingerprints hash the same
/// text the emitter produces ([`crate::incremental::program_fingerprint`]).
pub fn program_ipm(box_name: &str, m: &ProgramModel) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    if m.name == box_name {
        let _ = writeln!(out, "program {box_name}");
    } else {
        let _ = writeln!(out, "program {box_name} {}", m.name);
    }
    for c in &m.channels {
        let _ = writeln!(out, "  channel {c}");
    }
    for s in &m.slots {
        match &s.channel {
            Some(c) => {
                let _ = writeln!(out, "  slot {} {c}", s.name);
            }
            None => {
                let _ = writeln!(out, "  slot {}", s.name);
            }
        }
    }
    for t in &m.timers {
        let _ = writeln!(out, "  timer {t}");
    }
    // The first state parses back as the initial state; an explicit
    // `initial` line is only needed when the model disagrees.
    if m.states.first().is_some_and(|st| st.name != m.initial) {
        let _ = writeln!(out, "  initial {}", m.initial);
    }
    for st in &m.states {
        if st.is_final {
            let _ = writeln!(out, "  state {} final", st.name);
        } else {
            let _ = writeln!(out, "  state {}", st.name);
        }
        for g in &st.goals {
            let _ = writeln!(out, "    goal {} {}", g.kind.name(), g.slots.join(" "));
        }
        for t in &st.transitions {
            let _ = write!(out, "    on {} -> {}", t.trigger, t.to);
            if !t.effects.is_empty() {
                let effects: Vec<String> = t.effects.iter().map(ToString::to_string).collect();
                let _ = write!(out, " ! {}", effects.join("; "));
            }
            let _ = writeln!(out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = "
scenario demo
box ua
box peer
link ua peer 1

program ua
  channel c
  slot s c
  timer t
  state init
    goal openSlot s
    on start -> waiting ! openChannel(c); setTimer(t)
  state waiting final
    on isFlowing(s) -> waiting ! describe(s)
";

    #[test]
    fn parses_demo_scenario() {
        let sc = parse_scenario(DEMO).expect("parse");
        assert_eq!(sc.name, "demo");
        assert!(sc.topology.has_box("ua"));
        assert_eq!(sc.topology.links.len(), 1);
        let m = sc.program_for("ua").expect("program");
        assert_eq!(m.initial, "init");
        assert_eq!(m.states.len(), 2);
        assert!(m.validate().is_empty(), "{:?}", m.validate());
        let waiting = m.state_named("waiting").unwrap();
        assert!(waiting.is_final);
        assert_eq!(
            waiting.transitions[0].effects,
            vec![ModelEffect::UserAction {
                slot: "s".into(),
                action: SlotAction::Describe,
            }]
        );
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let sc = parse_scenario("# hello\n\nscenario x\nbox a # trailing\n").expect("parse");
        assert_eq!(sc.name, "x");
        assert!(sc.topology.has_box("a"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_scenario("scenario x\nbogus y\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));
    }

    #[test]
    fn bind_lines_populate_channel_bindings() {
        let sc = parse_scenario(
            "scenario x\nbox a\nbox b\nlink a b 1\nbind a c b\n\nprogram a\n  channel c\n  state i final\n",
        )
        .expect("parse");
        assert_eq!(sc.bindings.len(), 1);
        assert_eq!(sc.bound_peer("a", "c"), Some("b"));
        assert_eq!(sc.channel_toward("a", "b"), Some("c"));
    }

    #[test]
    fn bind_arity_checked() {
        let e = parse_scenario("scenario x\nbind a c\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bind"), "{}", e.message);
    }

    #[test]
    fn goal_outside_state_rejected() {
        assert!(parse_scenario("goal openSlot s\n").is_err());
    }

    #[test]
    fn to_ipm_round_trips_the_demo_scenario() {
        let sc = parse_scenario(DEMO).expect("parse");
        let text = to_ipm(&sc);
        let back = parse_scenario(&text).expect("reparse emitted text");
        assert_eq!(back, sc, "emitted:\n{text}");
    }

    #[test]
    fn to_ipm_round_trips_every_registry_scenario() {
        // The registry has model names that differ from their box
        // (`click_to_dial` on box `ctd`) — the `program <box> <name>`
        // form keeps those representable.
        for sc in ipmedia_apps::models::all_scenarios() {
            let text = to_ipm(&sc);
            let back = parse_scenario(&text).expect(&sc.name);
            assert_eq!(back, sc, "{}:\n{text}", sc.name);
        }
    }

    #[test]
    fn explicit_initial_line_round_trips() {
        let mut m = ProgramModel::new("p")
            .state(StateModel::new("a").final_state())
            .state(StateModel::new("b").final_state());
        m.initial = "b".to_string();
        let sc = ScenarioModel::new("x")
            .program("p", m)
            .with_topology(Topology::new().with_box("p"));
        let text = to_ipm(&sc);
        assert!(text.contains("initial b"), "{text}");
        let back = parse_scenario(&text).expect("reparse");
        assert_eq!(back, sc);
        assert_eq!(back.program_for("p").unwrap().initial, "b");
    }

    #[test]
    fn initial_outside_program_rejected() {
        assert!(parse_scenario("scenario x\ninitial a\n").is_err());
    }

    #[test]
    fn trigger_round_trips_display_syntax() {
        for (src, want) in [
            ("start", ModelTrigger::Start),
            ("channelUp(c)", ModelTrigger::ChannelUp("c".into())),
            ("isOpened(s)", ModelTrigger::SlotOpened("s".into())),
            ("timer(t)", ModelTrigger::Timer("t".into())),
            ("app(go)", ModelTrigger::App("go".into())),
        ] {
            let got = parse_trigger(src, 1).expect(src);
            assert_eq!(got, want);
            assert_eq!(got.to_string(), src, "Display should round-trip");
        }
    }
}
