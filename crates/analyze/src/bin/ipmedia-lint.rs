//! `ipmedia-lint` — static analysis CLI over scenario models.
//!
//! ```text
//! ipmedia-lint --all-examples                # lint the built-in registry
//! ipmedia-lint path/to/scenario.ipm ...      # lint serialized scenarios
//! ipmedia-lint --all-examples --deny warnings --jsonl
//! ```
//!
//! Rendered diagnostics and the summary go to stderr; with `--jsonl` each
//! diagnostic (and a final summary record) is emitted as one JSON object
//! per line on stdout, following the workspace observability convention.
//!
//! Exit status: 0 when clean, 1 when any error was found (or any warning
//! under `--deny warnings`), 2 on usage or I/O problems.

use ipmedia_analyze::{analyze_scenario, parse_scenario, Severity};
use ipmedia_core::program::model::ScenarioModel;
use ipmedia_obs::{json_str_array, JsonObj};
use std::process::ExitCode;

struct Options {
    all_examples: bool,
    deny_warnings: bool,
    jsonl: bool,
    files: Vec<String>,
}

fn usage() -> &'static str {
    "usage: ipmedia-lint [--all-examples] [--deny warnings] [--jsonl] [FILE.ipm ...]"
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        all_examples: false,
        deny_warnings: false,
        jsonl: false,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all-examples" => opts.all_examples = true,
            "--deny" => match it.next().map(String::as_str) {
                Some("warnings") => opts.deny_warnings = true,
                other => {
                    return Err(format!(
                        "--deny expects `warnings`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--jsonl" => opts.jsonl = true,
            "--help" | "-h" => return Err(usage().to_string()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            file => opts.files.push(file.to_string()),
        }
    }
    if !opts.all_examples && opts.files.is_empty() {
        return Err(format!("nothing to lint\n{}", usage()));
    }
    Ok(opts)
}

fn load_scenarios(opts: &Options) -> Result<Vec<ScenarioModel>, String> {
    let mut scenarios = Vec::new();
    if opts.all_examples {
        scenarios.extend(ipmedia_apps::models::all_scenarios());
    }
    for path in &opts.files {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let sc = parse_scenario(&src).map_err(|e| format!("{path}: {e}"))?;
        scenarios.push(sc);
    }
    Ok(scenarios)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let scenarios = match load_scenarios(&opts) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("ipmedia-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let mut errors = 0usize;
    let mut warnings = 0usize;
    let mut names: Vec<String> = Vec::new();
    for sc in &scenarios {
        names.push(sc.name.clone());
        let diags = analyze_scenario(sc);
        for d in &diags {
            match d.severity {
                Severity::Error => errors += 1,
                Severity::Warning => warnings += 1,
            }
            eprintln!("{}\n", d.render());
            if opts.jsonl {
                println!("{}", d.to_json());
            }
        }
    }

    let failed = errors > 0 || (opts.deny_warnings && warnings > 0);
    eprintln!(
        "ipmedia-lint: {} scenario(s), {errors} error(s), {warnings} warning(s){}",
        scenarios.len(),
        if failed { "" } else { " — clean" }
    );
    if opts.jsonl {
        println!(
            "{}",
            JsonObj::new()
                .str("type", "lint_summary")
                .raw(
                    "scenarios",
                    &json_str_array(names.iter().map(String::as_str))
                )
                .num("errors", errors as u64)
                .num("warnings", warnings as u64)
                .bool("deny_warnings", opts.deny_warnings)
                .bool("failed", failed)
                .finish()
        );
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
