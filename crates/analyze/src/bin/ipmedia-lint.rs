//! `ipmedia-lint` — static analysis CLI over scenario models.
//!
//! ```text
//! ipmedia-lint --all-examples                # lint the built-in registry
//! ipmedia-lint path/to/scenario.ipm ...      # lint serialized scenarios
//! ipmedia-lint --all-examples --deny warnings --jsonl --threads 8
//! ipmedia-lint --all-examples --sarif out.sarif --baseline lint-baseline.txt
//! ```
//!
//! Rendered diagnostics and the summary go to stderr; with `--jsonl` each
//! diagnostic (and a final summary record) is emitted as one JSON object
//! per line on stdout, following the workspace observability convention.
//! Output is byte-identical at any `--threads` value.
//!
//! Exit status contract (stable; scripts branch on it):
//!
//! * `0` — clean: no findings at the deny level (suppressed findings and
//!   warnings without `--deny warnings` do not fail the run);
//! * `1` — findings at the deny level;
//! * `2` — usage error (bad flag, nothing to lint);
//! * `3` — input or internal error (unreadable file, `.ipm` parse error).

use ipmedia_analyze::fuzz::{fuzz_campaign, promote_divergences, FuzzConfig, MckChecker};
use ipmedia_analyze::runner;
use ipmedia_analyze::{
    parse_scenario, render_manifest, run_incremental, to_ipm, to_sarif, AnalysisCache, Baseline,
    Diagnostic, IncrementalStats,
};
use ipmedia_core::program::model::ScenarioModel;
use ipmedia_obs::{json_str_array, JsonObj};
use std::path::Path;
use std::process::ExitCode;

const EXIT_FINDINGS: u8 = 1;
const EXIT_USAGE: u8 = 2;
const EXIT_INPUT: u8 = 3;

struct Options {
    all_examples: bool,
    deny_warnings: bool,
    jsonl: bool,
    threads: usize,
    baseline: Option<String>,
    write_baseline: Option<String>,
    sarif: Option<String>,
    files: Vec<String>,
    fuzz: Option<usize>,
    seed: Option<u64>,
    max_states: Option<usize>,
    incremental: bool,
    cache: Option<String>,
    emit_manifest: Option<String>,
    prune_baseline: bool,
    promote: Option<String>,
}

fn usage() -> &'static str {
    "usage: ipmedia-lint [OPTIONS] [FILE.ipm ...]

options:
  --all-examples          lint every scenario in the built-in registry
  --deny warnings         treat warnings as failures (exit 1)
  --jsonl                 one JSON object per finding on stdout
  --threads N             analysis workers (0 = all cores, default 1);
                          output is identical at any thread count
  --baseline FILE         suppress findings whose fingerprints FILE lists
  --write-baseline FILE   write the current findings as a baseline, then
                          exit as if they were suppressed
  --sarif FILE            also write the report as SARIF 2.1.0 to FILE
  --incremental           replay cached verdicts for unchanged inputs and
                          re-run only passes whose fingerprints changed;
                          output is byte-identical to a cold run
  --cache DIR             persistent cache directory for --incremental
                          (holds lint-cache.jsonl; required)
  --emit-manifest FILE    with --incremental, write the verified manifest
                          (fingerprint -> clean|findings) for
                          ipmedia-monitor --verified-manifest
  --prune-baseline        rewrite --baseline FILE with stale fingerprints
                          (matching no current finding) removed
  --fuzz N                instead of linting inputs, run the differential
                          fuzz campaign over N generated scenarios (the
                          same oracle as the fuzz_differential CI gate)
                          and print any divergence's minimized reproducer
  --seed S                campaign seed for --fuzz (decimal)
  --max-states M          base checker budget for --fuzz
  --promote DIR           with --fuzz, write each divergence's minimized
                          .ipm reproducer plus a triage note into DIR
  -h, --help              this help

exit status:
  0  clean (no findings at the deny level)
  1  findings at the deny level
  2  usage error
  3  input or internal error (unreadable file, parse error)"
}

fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        all_examples: false,
        deny_warnings: false,
        jsonl: false,
        threads: 1,
        baseline: None,
        write_baseline: None,
        sarif: None,
        files: Vec::new(),
        fuzz: None,
        seed: None,
        max_states: None,
        incremental: false,
        cache: None,
        emit_manifest: None,
        prune_baseline: false,
        promote: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all-examples" => opts.all_examples = true,
            "--deny" => match it.next().map(String::as_str) {
                Some("warnings") => opts.deny_warnings = true,
                other => {
                    return Err(format!(
                        "--deny expects `warnings`, got {}",
                        other.unwrap_or("nothing")
                    ))
                }
            },
            "--jsonl" => opts.jsonl = true,
            "--threads" => {
                let v = it.next().ok_or("--threads expects a count")?;
                opts.threads = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
            }
            "--baseline" => {
                opts.baseline = Some(it.next().ok_or("--baseline expects a file")?.clone());
            }
            "--write-baseline" => {
                opts.write_baseline =
                    Some(it.next().ok_or("--write-baseline expects a file")?.clone());
            }
            "--sarif" => {
                opts.sarif = Some(it.next().ok_or("--sarif expects a file")?.clone());
            }
            "--fuzz" => {
                let v = it.next().ok_or("--fuzz expects a scenario count")?;
                opts.fuzz = Some(v.parse().map_err(|_| format!("bad fuzz count `{v}`"))?);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed expects a campaign seed")?;
                opts.seed = Some(v.parse().map_err(|_| format!("bad seed `{v}`"))?);
            }
            "--max-states" => {
                let v = it.next().ok_or("--max-states expects a state count")?;
                opts.max_states = Some(v.parse().map_err(|_| format!("bad state count `{v}`"))?);
            }
            "--incremental" => opts.incremental = true,
            "--cache" => {
                opts.cache = Some(it.next().ok_or("--cache expects a directory")?.clone());
            }
            "--emit-manifest" => {
                opts.emit_manifest =
                    Some(it.next().ok_or("--emit-manifest expects a file")?.clone());
            }
            "--prune-baseline" => opts.prune_baseline = true,
            "--promote" => {
                opts.promote = Some(it.next().ok_or("--promote expects a directory")?.clone());
            }
            "--help" | "-h" => return Ok(None),
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            file => opts.files.push(file.to_string()),
        }
    }
    if !opts.all_examples && opts.files.is_empty() && opts.fuzz.is_none() {
        return Err(format!("nothing to lint\n{}", usage()));
    }
    if opts.incremental && opts.cache.is_none() {
        return Err("--incremental requires --cache DIR".to_string());
    }
    if opts.emit_manifest.is_some() && !opts.incremental {
        return Err("--emit-manifest requires --incremental".to_string());
    }
    if opts.prune_baseline && opts.baseline.is_none() {
        return Err("--prune-baseline requires --baseline FILE".to_string());
    }
    if opts.promote.is_some() && opts.fuzz.is_none() {
        return Err("--promote requires --fuzz".to_string());
    }
    Ok(Some(opts))
}

fn load_scenarios(opts: &Options) -> Result<Vec<ScenarioModel>, String> {
    let mut scenarios = Vec::new();
    if opts.all_examples {
        scenarios.extend(ipmedia_apps::models::all_scenarios());
    }
    for path in &opts.files {
        let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let sc = parse_scenario(&src).map_err(|e| format!("{path}: {e}"))?;
        scenarios.push(sc);
    }
    Ok(scenarios)
}

/// `--fuzz N`: run the differential analyzer↔checker campaign locally —
/// the one-command reproduction path for CI `fuzz_differential` findings.
/// Exit 0 on a clean run, [`EXIT_FINDINGS`] on any divergence.
fn fuzz_mode(opts: &Options, count: usize) -> ExitCode {
    let defaults = FuzzConfig::default();
    let cfg = FuzzConfig {
        scenarios: count,
        seed: opts.seed.unwrap_or(defaults.seed),
        threads: opts.threads,
        max_states: opts.max_states.unwrap_or(defaults.max_states),
        ..defaults
    };
    eprintln!(
        "ipmedia-lint: fuzzing {} scenario(s), seed {}, base cap {} states",
        cfg.scenarios, cfg.seed, cfg.max_states
    );
    let mut checker = MckChecker::new(cfg.max_states);
    let report = fuzz_campaign(&cfg, &mut checker);
    for d in &report.divergences {
        eprintln!(
            "ipmedia-lint: DIVERGENCE ({}) seed {:#018x}: {}",
            d.kind.name(),
            d.seed,
            d.detail
        );
        let repro = d.minimized.as_ref().unwrap_or(&d.scenario);
        eprintln!("--- minimized reproducer ---\n{}", to_ipm(repro));
    }
    if let Some(dir) = &opts.promote {
        match promote_divergences(&report, Path::new(dir)) {
            Ok(paths) => {
                for p in &paths {
                    eprintln!("ipmedia-lint: promoted {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("ipmedia-lint: --promote {dir}: {e}");
                return ExitCode::from(EXIT_INPUT);
            }
        }
    }
    eprintln!(
        "ipmedia-lint: {} scenario(s) fuzzed ({} analyzer-clean), {} class(es) checked, \
         {} divergence(s){}",
        report.scenarios,
        report.clean,
        report.checked.len(),
        report.divergences.len(),
        if report.is_clean_run() {
            " — clean"
        } else {
            ""
        }
    );
    if opts.jsonl {
        println!(
            "{}",
            JsonObj::new()
                .str("type", "fuzz_summary")
                .num("scenarios", report.scenarios as u64)
                .num("clean", report.clean as u64)
                .num("classes", report.checked.len() as u64)
                .num("divergences", report.divergences.len() as u64)
                .bool("clean_run", report.is_clean_run())
                .finish()
        );
    }
    if report.is_clean_run() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(EXIT_FINDINGS)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(o)) => o,
        Ok(None) => {
            println!("{}", usage());
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(EXIT_USAGE);
        }
    };
    if let Some(count) = opts.fuzz {
        return fuzz_mode(&opts, count);
    }
    let scenarios = match load_scenarios(&opts) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("ipmedia-lint: {msg}");
            return ExitCode::from(EXIT_INPUT);
        }
    };
    let baseline = match &opts.baseline {
        None => Baseline::default(),
        Some(path) => match std::fs::read_to_string(path) {
            Ok(src) => Baseline::parse(&src),
            Err(e) => {
                eprintln!("ipmedia-lint: {path}: {e}");
                return ExitCode::from(EXIT_INPUT);
            }
        },
    };

    let (report, inc): (runner::RunReport, Option<IncrementalStats>) = if opts.incremental {
        let dir = Path::new(opts.cache.as_deref().expect("validated in parse_args"));
        let mut cache = AnalysisCache::load(dir);
        let (report, stats) = run_incremental(&scenarios, opts.threads, &baseline, &mut cache);
        if let Err(e) = cache.save(dir) {
            eprintln!("ipmedia-lint: {}: {e}", dir.display());
            return ExitCode::from(EXIT_INPUT);
        }
        (report, Some(stats))
    } else {
        (runner::run(&scenarios, opts.threads, &baseline), None)
    };

    if let (Some(path), Some(stats)) = (&opts.emit_manifest, &inc) {
        if let Err(e) = std::fs::write(path, render_manifest(&stats.verdicts)) {
            eprintln!("ipmedia-lint: {path}: {e}");
            return ExitCode::from(EXIT_INPUT);
        }
        eprintln!(
            "ipmedia-lint: wrote verified manifest ({} scenario(s)) to {path}",
            stats.verdicts.len()
        );
    }

    if let Some(path) = &opts.write_baseline {
        if let Err(e) = std::fs::write(path, Baseline::render(&report.kept)) {
            eprintln!("ipmedia-lint: {path}: {e}");
            return ExitCode::from(EXIT_INPUT);
        }
        eprintln!(
            "ipmedia-lint: wrote {} fingerprint(s) to {path}",
            report.kept.len()
        );
        return ExitCode::SUCCESS;
    }
    if let Some(path) = &opts.sarif {
        if let Err(e) = std::fs::write(path, to_sarif(&report.kept)) {
            eprintln!("ipmedia-lint: {path}: {e}");
            return ExitCode::from(EXIT_INPUT);
        }
    }

    // Baseline hygiene: a fingerprint that matches no current finding is
    // stale — the suppressed problem was fixed (or moved). Warn (AZ701,
    // never fatal) and optionally rewrite the file without them.
    let stale = {
        let mut all = report.kept.clone();
        all.extend(report.suppressed.iter().cloned());
        baseline.stale(&all)
    };
    for fp in &stale {
        let d = Diagnostic::warning(
            "AZ701",
            format!("baseline fingerprint `{fp}` matches no current finding"),
        )
        .with_note("the suppressed finding was fixed or moved; remove the line or rerun with --prune-baseline");
        eprintln!("{}\n", d.render());
        if opts.jsonl {
            println!("{}", d.to_json());
        }
    }
    if opts.prune_baseline {
        let path = opts.baseline.as_deref().expect("validated in parse_args");
        let mut all = report.kept.clone();
        all.extend(report.suppressed.iter().cloned());
        if let Err(e) = std::fs::write(path, baseline.pruned(&all).to_text()) {
            eprintln!("ipmedia-lint: {path}: {e}");
            return ExitCode::from(EXIT_INPUT);
        }
        eprintln!(
            "ipmedia-lint: pruned {} stale fingerprint(s) from {path}",
            stale.len()
        );
    }

    let mut errors = 0usize;
    let mut warnings = 0usize;
    for d in &report.kept {
        match d.severity {
            ipmedia_analyze::Severity::Error => errors += 1,
            ipmedia_analyze::Severity::Warning => warnings += 1,
        }
        eprintln!("{}\n", d.render());
        if opts.jsonl {
            println!("{}", d.to_json());
        }
    }

    let failed = report.denied(opts.deny_warnings) > 0;
    if let Some(stats) = &inc {
        eprintln!(
            "ipmedia-lint: incremental: {}/{} full cache hit(s), {} scenario miss(es), \
             {} program run(s), {} eviction(s)",
            stats.full_hits,
            stats.scenarios,
            stats.scenario_misses,
            stats.program_runs,
            stats.cache_evictions
        );
        if opts.jsonl {
            println!("{}", stats.to_json());
        }
    }
    eprintln!(
        "ipmedia-lint: {} scenario(s), {errors} error(s), {warnings} warning(s), {} suppressed{}",
        scenarios.len(),
        report.suppressed.len(),
        if failed { "" } else { " — clean" }
    );
    if opts.jsonl {
        let names: Vec<&str> = scenarios.iter().map(|s| s.name.as_str()).collect();
        println!(
            "{}",
            JsonObj::new()
                .str("type", "lint_summary")
                .raw("scenarios", &json_str_array(names))
                .num("errors", errors as u64)
                .num("warnings", warnings as u64)
                .num("suppressed", report.suppressed.len() as u64)
                .bool("deny_warnings", opts.deny_warnings)
                .bool("failed", failed)
                .finish()
        );
    }
    if failed {
        ExitCode::from(EXIT_FINDINGS)
    } else {
        ExitCode::SUCCESS
    }
}
