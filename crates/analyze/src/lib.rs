//! # ipmedia-analyze
//!
//! Sans-IO static analyzer for the declarative box-program models of
//! [`ipmedia_core::program::model`]. Where `mck` model-checks the
//! *executable* goal objects and protocol engine, this crate exhaustively
//! checks the *declarative* §IV-A models that describe what programs are
//! supposed to do, catching whole failure classes before anything runs:
//!
//! 1. **Slot-protocol conformance** ([`conformance`], `AZ1xx`) — every
//!    raw protocol action a program performs is judged against the Fig.-9
//!    send table; statically impossible sequences (`select` before
//!    anything was described, any action on a `Closed` or unbound slot)
//!    are errors.
//! 2. **Goal-conflict detection** ([`conflict`], `AZ2xx`) — two live
//!    goals claiming one slot with incompatible intents.
//! 3. **Leak / termination lints** ([`leak`], `AZ3xx`) — unreachable
//!    states, wedged non-final states, and slots left possibly open and
//!    unclaimed at resting points.
//! 4. **Signaling-path well-formedness** ([`wellformed`], `AZ4xx`) —
//!    dangling channels, cycles breaking the tunnel model, isolated
//!    boxes, malformed channel bindings.
//! 5. **Interprocedural media-flow dataflow** ([`dataflow`], `AZ5xx`) —
//!    flowlink chains that cannot converge end-to-end, descriptor caches
//!    that go permanently stale, holds that wedge a downstream flowlink,
//!    over the [`interproc`] tunnel-product abstraction.
//! 6. **Signaling-race analysis** ([`race`], `AZ6xx`) — open/open races
//!    without the Fig.-10 initiator resolution, close/progress crossings
//!    that wedge a peer.
//!
//! The `ipmedia-lint` binary runs all passes over the built-in example
//! registry (`ipmedia_apps::models`) and over serialized `.ipm`
//! scenarios ([`parse`]), in parallel with deterministic output
//! ([`runner`]), with SARIF export and baseline suppression ([`sarif`]).
//! The [`fuzz`] module scales the analyzer↔checker differential oracle
//! to thousands of seeded, generated scenarios per run, with divergences
//! delta-minimized to small `.ipm` reproducers.

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
// Same pedantic allowlist as ipmedia-core: these fight the codebase's
// established idiom without catching bugs.
#![allow(
    clippy::module_name_repetitions,
    clippy::must_use_candidate,
    clippy::missing_errors_doc,
    clippy::missing_panics_doc,
    clippy::return_self_not_must_use,
    clippy::match_same_arms,
    clippy::similar_names,
    clippy::too_many_lines,
    clippy::items_after_statements,
    clippy::uninlined_format_args
)]

pub mod conflict;
pub mod conformance;
pub mod dataflow;
pub mod diag;
pub mod fuzz;
pub mod incremental;
pub mod interproc;
pub mod leak;
pub mod parse;
pub mod race;
pub mod runner;
pub mod sarif;
pub mod wellformed;

pub use diag::{sort_report, Diagnostic, Severity};
pub use fuzz::{
    class_label, fuzz_campaign, generate_scenario, scenario_seed, shrink_scenario, ClassChecker,
    ClassKey, ClassVerdict, Divergence, DivergenceKind, FuzzConfig, FuzzReport, FuzzRng,
    MckChecker,
};
pub use incremental::{
    program_fingerprint, render_manifest, run_incremental, scenario_fingerprint,
    topology_fingerprint, AnalysisCache, IncrementalStats, ScenarioVerdict, ANALYZER_VERSION,
};
pub use interproc::{covered_classes, covered_classes_up_to, CoveredClass};
pub use parse::{parse_scenario, to_ipm, ParseError};
pub use runner::{run, RunReport};
pub use sarif::{to_sarif, Baseline};

use ipmedia_core::program::model::{ProgramModel, ScenarioModel};

/// Run the three program-scoped passes over one model. Structural errors
/// from [`ProgramModel::validate`] are reported first (`AZ001`); the
/// deeper passes still run, but on a malformed model their findings may
/// be echoes of the structural problems.
pub fn analyze_program(model: &ProgramModel) -> Vec<Diagnostic> {
    let mut diags: Vec<Diagnostic> = model
        .validate()
        .into_iter()
        .map(|msg| Diagnostic::error("AZ001", msg).in_program(&model.name))
        .collect();
    if !model.is_deterministic() {
        diags.push(
            Diagnostic::error(
                "AZ002",
                "a state has two transitions on the same trigger".to_string(),
            )
            .in_program(&model.name),
        );
    }
    let (conf, abs) = conformance::analyze(model);
    diags.extend(conf);
    diags.extend(conflict::analyze(model));
    diags.extend(leak::analyze(model, &abs));
    diags
}

/// Run all passes over a scenario: the topology checks, the
/// interprocedural cross-box passes, plus every attached program.
/// Diagnostics are tagged with the scenario name and sorted errors-first.
pub fn analyze_scenario(scenario: &ScenarioModel) -> Vec<Diagnostic> {
    let mut diags = wellformed::analyze(scenario);
    diags.extend(dataflow::analyze(scenario));
    diags.extend(race::analyze(scenario));
    for (box_name, model) in &scenario.programs {
        diags.extend(analyze_program(model).into_iter().map(|d| {
            let mut d = d;
            if d.program.is_none() {
                d.program = Some(box_name.clone());
            }
            d
        }));
    }
    for d in &mut diags {
        if d.scenario.is_none() {
            d.scenario = Some(scenario.name.clone());
        }
    }
    sort_report(&mut diags);
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipmedia_core::program::model::StateModel;

    #[test]
    fn structural_errors_surface_as_az001() {
        let m = ProgramModel::new("bad")
            .state(StateModel::new("init").final_state())
            .slot("s", Some("ghost"));
        let diags = analyze_program(&m);
        assert!(diags.iter().any(|d| d.code == "AZ001"), "{diags:?}");
    }

    #[test]
    fn scenario_diagnostics_are_tagged_and_sorted() {
        use ipmedia_core::path::Topology;
        let sc = ScenarioModel::new("s")
            .program(
                "a",
                ProgramModel::new("a")
                    .state(StateModel::new("init").final_state())
                    .state(StateModel::new("orphan").final_state()),
            )
            .with_topology(Topology::new().with_box("a"));
        let diags = analyze_scenario(&sc);
        assert!(diags.iter().all(|d| d.scenario.as_deref() == Some("s")));
        // isolated box (AZ404) + unreachable state (AZ301), both warnings
        assert!(diags.iter().any(|d| d.code == "AZ301"));
        assert!(diags.iter().any(|d| d.code == "AZ404"));
    }
}
