//! Pass 4: signaling-path well-formedness (`AZ4xx`).
//!
//! The paper's signaling graph is a tree of boxes joined by channels;
//! media paths are threaded through it as chains of tunnels (§V). The
//! pass checks the scenario topology:
//!
//! * `AZ401` (error) — a program is attached to a box the topology does
//!   not declare;
//! * `AZ402` (error) — a channel link ends at an undeclared box (dangling
//!   channel);
//! * `AZ403` (error) — the undirected channel graph has a cycle: a media
//!   path could be threaded through the same box twice, breaking the
//!   tunnel model's assumption that paths are simple chains;
//! * `AZ404` (warning) — a box is isolated (no channel touches it);
//! * `AZ405` (error) — a channel declares zero tunnels, so no slot can
//!   ever ride it;
//! * `AZ406` (error) — a channel binding is malformed: it names an
//!   unprogrammed box or undeclared channel, binds toward a box with no
//!   connecting link, or duplicates another binding for the same box
//!   channel or box/peer pair. (Bindings are what let the interprocedural
//!   passes pair slots across a link, so a bad one silently disables
//!   those checks.)

use crate::diag::Diagnostic;
use ipmedia_core::program::model::ScenarioModel;
use std::collections::{BTreeMap, BTreeSet};

/// Union-find over box names, for cycle detection in the channel graph.
struct Forest<'a> {
    parent: BTreeMap<&'a str, &'a str>,
}

impl<'a> Forest<'a> {
    fn new() -> Self {
        Self {
            parent: BTreeMap::new(),
        }
    }

    fn find(&mut self, x: &'a str) -> &'a str {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    /// Union the classes of `a` and `b`; false iff already joined (cycle).
    fn union(&mut self, a: &'a str, b: &'a str) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent.insert(ra, rb);
        true
    }
}

/// Run the well-formedness pass over a scenario's topology and program
/// attachments.
pub fn analyze(scenario: &ScenarioModel) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let topo = &scenario.topology;

    for (box_name, _) in &scenario.programs {
        if !topo.has_box(box_name) {
            diags.push(
                Diagnostic::error(
                    "AZ401",
                    format!("program attached to undeclared box `{box_name}`"),
                )
                .in_scenario(&scenario.name),
            );
        }
    }

    let mut forest = Forest::new();
    for link in &topo.links {
        for end in [&link.from, &link.to] {
            if !topo.has_box(end) {
                diags.push(
                    Diagnostic::error(
                        "AZ402",
                        format!(
                            "channel {} -- {} ends at undeclared box `{end}`",
                            link.from, link.to
                        ),
                    )
                    .in_scenario(&scenario.name)
                    .with_note("a dangling channel can carry no tunnels".to_string()),
                );
            }
        }
        if link.tunnels == 0 {
            diags.push(
                Diagnostic::error(
                    "AZ405",
                    format!("channel {} -- {} declares zero tunnels", link.from, link.to),
                )
                .in_scenario(&scenario.name),
            );
        }
        if !forest.union(&link.from, &link.to) {
            diags.push(
                Diagnostic::error(
                    "AZ403",
                    format!(
                        "channel {} -- {} closes a cycle in the signaling graph",
                        link.from, link.to
                    ),
                )
                .in_scenario(&scenario.name)
                .with_note(
                    "the tunnel model threads media paths as simple chains; \
                     a cyclic signaling graph can thread a path through one \
                     box twice"
                        .to_string(),
                ),
            );
        }
    }

    for b in &topo.boxes {
        if topo.degree(b) == 0 {
            diags.push(
                Diagnostic::warning("AZ404", format!("box `{b}` is isolated (no channel)"))
                    .in_scenario(&scenario.name),
            );
        }
    }

    let mut seen_channel: BTreeSet<(&str, &str)> = BTreeSet::new();
    let mut seen_peer: BTreeSet<(&str, &str)> = BTreeSet::new();
    for b in &scenario.bindings {
        let mut bad = |msg: String| {
            diags.push(Diagnostic::error("AZ406", msg).in_scenario(&scenario.name));
        };
        let Some(program) = scenario.program_for(&b.box_name) else {
            bad(format!("binding names unprogrammed box `{}`", b.box_name));
            continue;
        };
        if !program.channels.iter().any(|c| c == &b.channel) {
            bad(format!(
                "binding names undeclared channel `{}` of box `{}`",
                b.channel, b.box_name
            ));
            continue;
        }
        if topo.link_between(&b.box_name, &b.peer).is_none() {
            bad(format!(
                "binding of `{}`.`{}` points at `{}`, but no link joins them",
                b.box_name, b.channel, b.peer
            ));
            continue;
        }
        if !seen_channel.insert((&b.box_name, &b.channel)) {
            bad(format!(
                "channel `{}` of box `{}` is bound more than once",
                b.channel, b.box_name
            ));
        }
        if !seen_peer.insert((&b.box_name, &b.peer)) {
            bad(format!(
                "box `{}` binds two channels toward `{}`",
                b.box_name, b.peer
            ));
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipmedia_core::path::Topology;

    fn scenario_with(topo: Topology) -> ScenarioModel {
        ScenarioModel::new("t").with_topology(topo)
    }

    #[test]
    fn dangling_channel_flagged() {
        let s = scenario_with(Topology::new().with_box("a").with_link("a", "ghost", 1));
        let diags = analyze(&s);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "AZ402" && d.message.contains("ghost")),
            "{diags:?}"
        );
    }

    #[test]
    fn cycle_flagged() {
        let s = scenario_with(
            Topology::new()
                .with_box("a")
                .with_box("b")
                .with_box("c")
                .with_link("a", "b", 1)
                .with_link("b", "c", 1)
                .with_link("c", "a", 1),
        );
        let diags = analyze(&s);
        assert!(diags.iter().any(|d| d.code == "AZ403"), "{diags:?}");
    }

    #[test]
    fn tree_is_clean() {
        let s = scenario_with(
            Topology::new()
                .with_box("a")
                .with_box("b")
                .with_box("c")
                .with_link("a", "b", 1)
                .with_link("b", "c", 2),
        );
        assert!(analyze(&s).is_empty(), "{:?}", analyze(&s));
    }

    #[test]
    fn isolated_box_warned() {
        let s = scenario_with(Topology::new().with_box("lonely"));
        assert!(analyze(&s).iter().any(|d| d.code == "AZ404"));
    }

    #[test]
    fn zero_tunnel_channel_flagged() {
        let s = scenario_with(
            Topology::new()
                .with_box("a")
                .with_box("b")
                .with_link("a", "b", 0),
        );
        assert!(analyze(&s).iter().any(|d| d.code == "AZ405"));
    }

    #[test]
    fn program_on_undeclared_box_flagged() {
        use ipmedia_core::program::model::ProgramModel;
        let s = ScenarioModel::new("t")
            .program("ghost", ProgramModel::new("p"))
            .with_topology(Topology::new().with_box("a"));
        assert!(analyze(&s).iter().any(|d| d.code == "AZ401"));
    }

    fn bound_pair() -> ScenarioModel {
        use ipmedia_core::program::model::{ProgramModel, StateModel};
        let p = ProgramModel::new("a")
            .channel("ch")
            .state(StateModel::new("idle").final_state());
        ScenarioModel::new("t").program("a", p).with_topology(
            Topology::new()
                .with_box("a")
                .with_box("b")
                .with_link("a", "b", 1),
        )
    }

    #[test]
    fn good_binding_is_clean() {
        let s = bound_pair().bind("a", "ch", "b");
        assert!(analyze(&s).is_empty(), "{:?}", analyze(&s));
    }

    #[test]
    fn binding_on_unprogrammed_box_flagged() {
        let s = bound_pair().bind("b", "ch", "a");
        let diags = analyze(&s);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "AZ406" && d.message.contains("unprogrammed")),
            "{diags:?}"
        );
    }

    #[test]
    fn binding_of_undeclared_channel_flagged() {
        let s = bound_pair().bind("a", "ghost", "b");
        let diags = analyze(&s);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "AZ406" && d.message.contains("undeclared channel")),
            "{diags:?}"
        );
    }

    #[test]
    fn binding_without_link_flagged() {
        let s = bound_pair().bind("a", "ch", "nowhere");
        let diags = analyze(&s);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "AZ406" && d.message.contains("no link joins")),
            "{diags:?}"
        );
    }

    #[test]
    fn duplicate_bindings_flagged() {
        // Same channel bound twice AND two channels toward one peer.
        use ipmedia_core::program::model::{ProgramModel, StateModel};
        let p = ProgramModel::new("a")
            .channel("ch")
            .channel("ch2")
            .state(StateModel::new("idle").final_state());
        let s = ScenarioModel::new("t")
            .program("a", p)
            .with_topology(
                Topology::new()
                    .with_box("a")
                    .with_box("b")
                    .with_link("a", "b", 1),
            )
            .bind("a", "ch", "b")
            .bind("a", "ch", "b")
            .bind("a", "ch2", "b");
        let diags = analyze(&s);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "AZ406" && d.message.contains("bound more than once")),
            "{diags:?}"
        );
        assert!(
            diags
                .iter()
                .any(|d| d.code == "AZ406" && d.message.contains("two channels toward")),
            "{diags:?}"
        );
    }
}
