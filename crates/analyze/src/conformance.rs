//! Pass 1: slot-protocol conformance (`AZ1xx`).
//!
//! Abstract interpretation of a [`ProgramModel`] over the Fig.-9 protocol
//! FSM. For each program state the pass computes, per slot, the set of
//! protocol states the slot can possibly be in (plus *unbound*: the slot's
//! channel is not up). Every `UserAction` effect is then judged against
//! [`SlotState::after_send`] — i.e. against the same [`SEND_RULES`] table
//! the runtime `Slot` validates with. An action that is legal in **no**
//! possible state is statically impossible (`AZ101`): the program would hit
//! `ProtocolError::BadState` on every execution that reaches it. This is
//! the static form of the "action on a `Closed` slot" failure class the
//! fault-injection campaign catches dynamically.
//!
//! [`SEND_RULES`]: ipmedia_core::slot::SEND_RULES

use crate::diag::Diagnostic;
use ipmedia_core::program::model::{ModelEffect, ModelTrigger, ProgramModel};
use ipmedia_core::{GoalKind, SlotState};
use std::collections::{BTreeMap, BTreeSet};

/// Abstract protocol state of one slot: either *unbound* (its channel is
/// not up, so no protocol state exists) or one of the five Fig.-9 states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AbsState {
    /// The slot's channel is not up; no slot exists to act on.
    Unbound,
    /// The slot is bound and in the given protocol state.
    In(SlotState),
}

impl AbsState {
    /// Short printable name (`unbound` or the protocol state name).
    pub fn name(self) -> &'static str {
        match self {
            AbsState::Unbound => "unbound",
            AbsState::In(s) => s.name(),
        }
    }
}

/// The set of abstract states a slot may be in at a program point.
pub type AbsSet = BTreeSet<AbsState>;

/// Per-state, per-slot abstract result: `state name -> slot name -> set`.
/// The map records the *post-entry* view (after goal widening), which is
/// what the leak pass needs at final states.
pub type AbsMap = BTreeMap<String, BTreeMap<String, AbsSet>>;

fn all_bound() -> AbsSet {
    SlotState::ALL.iter().copied().map(AbsState::In).collect()
}

/// States a slot controlled by a goal of `kind` may be driven through
/// while the program dwells in the annotated state. `closeSlot` drives
/// monotonically dead; every other primitive may take the slot anywhere
/// short of `Closing` (goals close only on teardown).
fn goal_range(kind: GoalKind) -> AbsSet {
    match kind {
        GoalKind::CloseSlot => [
            AbsState::In(SlotState::Closing),
            AbsState::In(SlotState::Closed),
        ]
        .into_iter()
        .collect(),
        GoalKind::OpenSlot | GoalKind::HoldSlot | GoalKind::UserAgent | GoalKind::FlowLink => {
            all_bound()
        }
    }
}

/// Apply the §IV-A goal annotations of `state`: a claimed slot is driven
/// by its goal object, so its possible states widen to the goal's range
/// (claiming also binds — incoming channels are bound by the environment).
fn widen_by_goals(
    model: &ProgramModel,
    state: &str,
    mut slots: BTreeMap<String, AbsSet>,
) -> BTreeMap<String, AbsSet> {
    if let Some(st) = model.state_named(state) {
        for g in &st.goals {
            for slot in &g.slots {
                if let Some(set) = slots.get_mut(slot) {
                    *set = goal_range(g.kind);
                }
            }
        }
    }
    slots
}

fn rides(model: &ProgramModel, slot: &str, channel: &str) -> bool {
    model
        .slot_named(slot)
        .and_then(|d| d.channel.as_deref())
        .is_some_and(|c| c == channel)
}

/// Refine the slot map by what the trigger implies. Slot-predicate
/// triggers pin the slot's state (and bind it — an incoming `open` means
/// the channel is up); channel triggers bind or unbind the riding slots.
fn refine_by_trigger(
    model: &ProgramModel,
    trigger: &ModelTrigger,
    slots: &mut BTreeMap<String, AbsSet>,
) {
    match trigger {
        ModelTrigger::SlotOpened(s) => {
            slots.insert(s.clone(), [AbsState::In(SlotState::Opened)].into());
        }
        ModelTrigger::SlotFlowing(s) => {
            slots.insert(s.clone(), [AbsState::In(SlotState::Flowing)].into());
        }
        ModelTrigger::SlotClosed(s) => {
            slots.insert(s.clone(), [AbsState::In(SlotState::Closed)].into());
        }
        ModelTrigger::ChannelUp(c) => {
            for (name, set) in slots.iter_mut() {
                if rides(model, name, c) && set.contains(&AbsState::Unbound) {
                    set.remove(&AbsState::Unbound);
                    set.insert(AbsState::In(SlotState::Closed));
                }
            }
        }
        ModelTrigger::ChannelDown(c) => {
            for (name, set) in slots.iter_mut() {
                if rides(model, name, c) {
                    *set = [AbsState::Unbound].into();
                }
            }
        }
        _ => {}
    }
}

/// Apply one effect to the slot map, reporting protocol violations for
/// `UserAction`s when `diags` is given (the reporting pass).
fn apply_effect(
    model: &ProgramModel,
    state: &str,
    effect: &ModelEffect,
    slots: &mut BTreeMap<String, AbsSet>,
    diags: Option<&mut Vec<Diagnostic>>,
) {
    match effect {
        ModelEffect::OpenChannel(c) => {
            for (name, set) in slots.iter_mut() {
                if rides(model, name, c) && set.contains(&AbsState::Unbound) {
                    set.remove(&AbsState::Unbound);
                    set.insert(AbsState::In(SlotState::Closed));
                }
            }
        }
        ModelEffect::CloseChannel(c) => {
            for (name, set) in slots.iter_mut() {
                if rides(model, name, c) {
                    *set = [AbsState::Unbound].into();
                }
            }
        }
        ModelEffect::UserAction { slot, action } => {
            let Some(set) = slots.get_mut(slot) else {
                return; // undeclared slot: reported as AZ001 by validate()
            };
            let mut next: AbsSet = AbsSet::new();
            let mut legal = 0usize;
            let mut illegal: Vec<&'static str> = Vec::new();
            for abs in set.iter() {
                match abs {
                    AbsState::In(s) => {
                        if let Some(n) = s.after_send(*action) {
                            legal += 1;
                            next.insert(AbsState::In(n));
                        } else {
                            illegal.push(s.name());
                            next.insert(*abs);
                        }
                    }
                    AbsState::Unbound => {
                        illegal.push("unbound");
                        next.insert(AbsState::Unbound);
                    }
                }
            }
            if let Some(diags) = diags {
                if legal == 0 {
                    diags.push(
                        Diagnostic::error(
                            "AZ101",
                            format!(
                                "user action `{}` on slot `{slot}` can never be legal",
                                action.name()
                            ),
                        )
                        .in_program(&model.name)
                        .at_state(state)
                        .with_note(format!(
                            "possible protocol states for `{slot}` here: {}; \
                             the Fig.-9 send table permits `{}` in none of them",
                            illegal.join(", "),
                            action.name()
                        )),
                    );
                } else if !illegal.is_empty() {
                    diags.push(
                        Diagnostic::warning(
                            "AZ102",
                            format!(
                                "user action `{}` on slot `{slot}` is illegal on some paths",
                                action.name()
                            ),
                        )
                        .in_program(&model.name)
                        .at_state(state)
                        .with_note(format!("illegal when `{slot}` is {}", illegal.join(" or "))),
                    );
                }
            }
            *set = next;
        }
        ModelEffect::SetTimer(_) | ModelEffect::CancelTimer(_) | ModelEffect::Terminate => {}
    }
}

fn initial_map(model: &ProgramModel) -> BTreeMap<String, AbsSet> {
    model
        .slots
        .iter()
        .map(|d| {
            // A slot riding a declared channel starts unbound (the channel
            // is down); a channel-less slot is bound by the environment
            // before the program starts.
            let init = if d.channel.is_some() {
                AbsState::Unbound
            } else {
                AbsState::In(SlotState::Closed)
            };
            (d.name.clone(), AbsSet::from([init]))
        })
        .collect()
}

fn join_into(target: &mut BTreeMap<String, AbsSet>, src: &BTreeMap<String, AbsSet>) -> bool {
    let mut grew = false;
    for (name, set) in src {
        let entry = target.entry(name.clone()).or_default();
        for abs in set {
            grew |= entry.insert(*abs);
        }
    }
    grew
}

/// Run the conformance pass: returns the diagnostics plus the stable
/// per-state abstract slot map (consumed by the leak pass).
pub fn analyze(model: &ProgramModel) -> (Vec<Diagnostic>, AbsMap) {
    // Fixpoint over state-entry maps: joins only grow finite sets.
    let mut entry: AbsMap = AbsMap::new();
    entry.insert(model.initial.clone(), initial_map(model));
    loop {
        let mut grew = false;
        for st in &model.states {
            let Some(at_entry) = entry.get(&st.name).cloned() else {
                continue; // not (yet) reachable
            };
            let post = widen_by_goals(model, &st.name, at_entry);
            for t in &st.transitions {
                let mut slots = post.clone();
                refine_by_trigger(model, &t.trigger, &mut slots);
                for e in &t.effects {
                    apply_effect(model, &st.name, e, &mut slots, None);
                }
                grew |= join_into(entry.entry(t.to.clone()).or_default(), &slots);
            }
        }
        if !grew {
            break;
        }
    }

    // Reporting pass over the stable maps.
    let mut diags = Vec::new();
    let mut post_map: AbsMap = AbsMap::new();
    for st in &model.states {
        let Some(at_entry) = entry.get(&st.name).cloned() else {
            continue;
        };
        let post = widen_by_goals(model, &st.name, at_entry);
        for t in &st.transitions {
            let mut slots = post.clone();
            refine_by_trigger(model, &t.trigger, &mut slots);
            for e in &t.effects {
                apply_effect(model, &st.name, e, &mut slots, Some(&mut diags));
            }
        }
        post_map.insert(st.name.clone(), post);
    }
    (diags, post_map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipmedia_core::program::model::StateModel;
    use ipmedia_core::SlotAction;

    /// The planted PR-2 failure class, statically: `select` on a slot that
    /// is still `Closed` (nothing ever opened it).
    #[test]
    fn select_on_closed_slot_is_an_error() {
        let m = ProgramModel::new("ua")
            .slot("s", None)
            .state(StateModel::new("init").on(
                ModelTrigger::Start,
                "done",
                vec![ModelEffect::UserAction {
                    slot: "s".into(),
                    action: SlotAction::Select,
                }],
            ))
            .state(StateModel::new("done").final_state());
        let (diags, _) = analyze(&m);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "AZ101" && d.message.contains("`select`")),
            "{diags:?}"
        );
    }

    /// Opening a channel binds the slot `Closed`, after which `open` is
    /// legal — no diagnostics.
    #[test]
    fn open_after_channel_up_is_clean() {
        let m = ProgramModel::new("dialer")
            .channel("c")
            .slot("s", Some("c"))
            .state(StateModel::new("init").on(
                ModelTrigger::Start,
                "dialing",
                vec![
                    ModelEffect::OpenChannel("c".into()),
                    ModelEffect::UserAction {
                        slot: "s".into(),
                        action: SlotAction::Open,
                    },
                ],
            ))
            .state(StateModel::new("dialing").final_state());
        let (diags, map) = analyze(&m);
        assert!(diags.is_empty(), "{diags:?}");
        assert_eq!(
            map["dialing"]["s"],
            AbsSet::from([AbsState::In(SlotState::Opening)])
        );
    }

    /// Acting on a slot whose channel was never opened is the unbound
    /// variant of the same class.
    #[test]
    fn action_on_unbound_slot_is_an_error() {
        let m = ProgramModel::new("p")
            .channel("c")
            .slot("s", Some("c"))
            .state(StateModel::new("init").on(
                ModelTrigger::Start,
                "done",
                vec![ModelEffect::UserAction {
                    slot: "s".into(),
                    action: SlotAction::Open,
                }],
            ))
            .state(StateModel::new("done").final_state());
        let (diags, _) = analyze(&m);
        assert!(diags.iter().any(|d| d.code == "AZ101"), "{diags:?}");
    }

    /// A slot-flowing trigger pins the state, making `describe` legal.
    #[test]
    fn trigger_refinement_enables_flowing_actions() {
        let m = ProgramModel::new("p")
            .channel("c")
            .slot("s", Some("c"))
            .state(StateModel::new("init").on(
                ModelTrigger::SlotFlowing("s".into()),
                "talk",
                vec![ModelEffect::UserAction {
                    slot: "s".into(),
                    action: SlotAction::Describe,
                }],
            ))
            .state(StateModel::new("talk").final_state());
        let (diags, _) = analyze(&m);
        assert!(diags.is_empty(), "{diags:?}");
    }
}
