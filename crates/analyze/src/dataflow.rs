//! Pass 5: cross-box media-flow dataflow (`AZ5xx`).
//!
//! These are the path-level defects the per-box passes cannot see: a
//! program's flowlink is only as good as the peer on the far side of each
//! tunnel. Built on the [`crate::interproc`] product abstraction:
//!
//! * `AZ501` (error) — *broken flowlink chain*: a box rests permanently
//!   (a [sink](ipmedia_core::program::model::ProgramModel::sinks)) with a
//!   flow-wanting claim on a paired slot, but in every co-reachable peer
//!   state the peer can never again claim the paired slot with a
//!   flow-wanting goal. The chain cannot converge end-to-end: the box
//!   waits forever for media that no execution delivers.
//! * `AZ502` (warning) — *permanently stale descriptor cache*: a box
//!   re-describes a paired slot while the peer can be resting permanently
//!   with the paired slot held. The hold means the peer's goal object
//!   never answers with a fresh selector, so the describing box's cache
//!   of the peer's media choice is stale forever after.
//! * `AZ503` (error) — *hold wedges a downstream flowlink*: one box rests
//!   permanently holding its side of a tunnel while the co-reachable peer
//!   rests permanently flow-linking the paired slot onward. The §IV-B
//!   hold is meant to park a path temporarily; parked at a sink it blocks
//!   the peer's flowlink forever.
//!
//! All three quantify over the tunnel product, so a finding says "on this
//! pair of resting states, which some interleaving reaches, the flow can
//! never converge" — not merely "these two states look suspicious".

use crate::diag::Diagnostic;
use crate::interproc::{co_reachable, future_flow_claim, tunnels, Tunnel};
use ipmedia_core::program::model::{ModelEffect, ProgramModel, ScenarioModel};
use ipmedia_core::{GoalKind, SlotAction};
use std::collections::BTreeSet;

/// Run the dataflow pass over every tunnel of the scenario.
pub fn analyze(scenario: &ScenarioModel) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for tunnel in tunnels(scenario) {
        let (Some(pa), Some(pb)) = (
            scenario.program_for(&tunnel.box_a),
            scenario.program_for(&tunnel.box_b),
        ) else {
            continue;
        };
        let product = co_reachable(pa, pb, &tunnel);
        // Check each direction: A's rests against B, then B's against A.
        check_side(&tunnel, &tunnel.box_a, pa, pb, &product, false, &mut diags);
        check_side(&tunnel, &tunnel.box_b, pb, pa, &product, true, &mut diags);
    }
    diags
}

/// Peer states co-reachable with `own_state` (projecting the channel
/// bit away). `flipped` selects which product component is "own".
fn peer_states<'a>(
    product: &'a BTreeSet<(String, String, bool)>,
    own_state: &str,
    flipped: bool,
) -> BTreeSet<&'a str> {
    product
        .iter()
        .filter_map(|(sa, sb, _)| {
            let (own, peer) = if flipped { (sb, sa) } else { (sa, sb) };
            (own == own_state).then_some(peer.as_str())
        })
        .collect()
}

fn check_side(
    tunnel: &Tunnel,
    box_name: &str,
    own: &ProgramModel,
    peer: &ProgramModel,
    product: &BTreeSet<(String, String, bool)>,
    flipped: bool,
    diags: &mut Vec<Diagnostic>,
) {
    let peer_box = tunnel.peer_of(box_name);
    let peer_sinks: BTreeSet<&str> = peer.sinks().into_iter().collect();

    // AZ501 / AZ503: permanent rests wanting flow on a paired slot.
    for sink in own.sinks() {
        let Some(state) = own.state_named(sink) else {
            continue;
        };
        for goal in &state.goals {
            if !goal.kind.wants_flow() {
                continue;
            }
            for slot in &goal.slots {
                let Some(paired) = tunnel.paired_slot(box_name, slot) else {
                    continue;
                };
                let qb = peer_states(product, sink, flipped);
                if qb.is_empty() || qb.iter().any(|s| future_flow_claim(peer, s, paired)) {
                    continue;
                }
                // No co-reachable peer state ever claims the paired slot
                // toward flow again. Distinguish the permanent-hold wedge
                // from the plain broken chain.
                let held_at = qb.iter().copied().find(|s| {
                    peer_sinks.contains(s)
                        && peer
                            .claims_on(s, paired)
                            .iter()
                            .any(|g| g.kind == GoalKind::HoldSlot)
                });
                if let Some(held) = held_at {
                    diags.push(
                        Diagnostic::error(
                            "AZ503",
                            format!(
                                "flowlink on slot `{slot}` is blocked forever: peer \
                                 `{peer_box}` can rest permanently in `{held}` holding \
                                 the paired slot `{paired}`"
                            ),
                        )
                        .in_program(box_name)
                        .at_state(sink)
                        .with_note(
                            "holdSlot parks a path temporarily; held at a state with \
                             no outgoing transitions it starves the downstream \
                             flowLink permanently"
                                .to_string(),
                        ),
                    );
                } else {
                    diags.push(
                        Diagnostic::error(
                            "AZ501",
                            format!(
                                "flowlink chain through slot `{slot}` can never converge: \
                                 peer `{peer_box}` never claims the paired slot `{paired}` \
                                 toward flow from any co-reachable state"
                            ),
                        )
                        .in_program(box_name)
                        .at_state(sink)
                        .with_note(format!(
                            "`{box_name}` rests permanently in `{sink}` wanting media on \
                             `{slot}`, but no execution brings the far side up"
                        )),
                    );
                }
            }
        }
    }

    // AZ502: re-describing toward a peer that can park the pair forever.
    let reachable = own.reachable_states();
    for st in &own.states {
        if !reachable.contains(st.name.as_str()) {
            continue;
        }
        for t in &st.transitions {
            for e in &t.effects {
                let ModelEffect::UserAction {
                    slot,
                    action: SlotAction::Describe,
                } = e
                else {
                    continue;
                };
                let Some(paired) = tunnel.paired_slot(box_name, slot) else {
                    continue;
                };
                let parked = peer_states(product, &st.name, flipped)
                    .into_iter()
                    .find(|s| {
                        peer_sinks.contains(s)
                            && peer
                                .claims_on(s, paired)
                                .iter()
                                .any(|g| g.kind == GoalKind::HoldSlot)
                    });
                if let Some(parked) = parked {
                    diags.push(
                        Diagnostic::warning(
                            "AZ502",
                            format!(
                                "descriptor for slot `{slot}` can go permanently stale: \
                                 peer `{peer_box}` can rest in `{parked}` holding the \
                                 paired slot `{paired}`"
                            ),
                        )
                        .in_program(box_name)
                        .at_state(&st.name)
                        .with_note(
                            "a held slot never answers a fresh describe with a selector, \
                             so the cache of the peer's media choice is never refreshed"
                                .to_string(),
                        ),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipmedia_core::path::Topology;
    use ipmedia_core::program::model::{GoalAnnotation, ModelTrigger, StateModel};

    fn two_box_scenario(a: ProgramModel, b: ProgramModel) -> ScenarioModel {
        ScenarioModel::new("t")
            .program("a", a)
            .program("b", b)
            .with_topology(
                Topology::new()
                    .with_box("a")
                    .with_box("b")
                    .with_link("a", "b", 1),
            )
            .bind("a", "ch", "b")
            .bind("b", "ch", "a")
    }

    /// A rests flow-linking toward b; b parks its paired slot unclaimed
    /// at a sink — the chain can never converge.
    #[test]
    fn broken_flowlink_chain_is_az501() {
        let a = ProgramModel::new("a")
            .channel("ch")
            .slot("s", Some("ch"))
            .state(
                StateModel::new("linked")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s")),
            );
        let b = ProgramModel::new("b")
            .channel("ch")
            .slot("u", Some("ch"))
            .state(StateModel::new("parked").final_state());
        let diags = analyze(&two_box_scenario(a, b));
        assert!(diags.iter().any(|d| d.code == "AZ501"), "{diags:?}");
    }

    /// The peer claims the paired slot toward flow at its own rest: the
    /// chain converges, nothing fires.
    #[test]
    fn converging_chain_is_clean() {
        let side = |slot: &str| {
            ProgramModel::new("p")
                .channel("ch")
                .slot(slot, Some("ch"))
                .state(
                    StateModel::new("linked")
                        .final_state()
                        .goal(GoalAnnotation::one(GoalKind::OpenSlot, slot)),
                )
        };
        let diags = analyze(&two_box_scenario(side("s"), side("u")));
        assert!(diags.is_empty(), "{diags:?}");
    }

    /// Peer holds the paired slot at a sink while we flowlink: AZ503.
    #[test]
    fn permanent_hold_against_flowlink_is_az503() {
        let a = ProgramModel::new("a")
            .channel("ch")
            .slot("s", Some("ch"))
            .state(
                StateModel::new("linked")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s")),
            );
        let b = ProgramModel::new("b")
            .channel("ch")
            .slot("u", Some("ch"))
            .state(
                StateModel::new("parked")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::HoldSlot, "u")),
            );
        let diags = analyze(&two_box_scenario(a, b));
        assert!(diags.iter().any(|d| d.code == "AZ503"), "{diags:?}");
        assert!(!diags.iter().any(|d| d.code == "AZ501"), "{diags:?}");
    }

    /// A hold the peer can still leave (final state with an exit) is a
    /// temporary park, not a wedge.
    #[test]
    fn escapable_hold_is_clean() {
        let a = ProgramModel::new("a")
            .channel("ch")
            .slot("s", Some("ch"))
            .state(
                StateModel::new("linked")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s")),
            );
        let b = ProgramModel::new("b")
            .channel("ch")
            .slot("u", Some("ch"))
            .state(
                StateModel::new("parked")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::HoldSlot, "u"))
                    .on(ModelTrigger::App("resume".into()), "talking", vec![]),
            )
            .state(
                StateModel::new("talking")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "u")),
            );
        let diags = analyze(&two_box_scenario(a, b));
        assert!(diags.is_empty(), "{diags:?}");
    }

    /// Re-describing while the peer can be permanently parked: AZ502.
    #[test]
    fn describe_toward_permanent_hold_is_az502() {
        let a = ProgramModel::new("a")
            .channel("ch")
            .slot("s", Some("ch"))
            .state(
                StateModel::new("talk")
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s"))
                    .on(
                        ModelTrigger::SlotFlowing("s".into()),
                        "talk",
                        vec![ModelEffect::UserAction {
                            slot: "s".into(),
                            action: SlotAction::Describe,
                        }],
                    )
                    .final_state(),
            );
        let b = ProgramModel::new("b")
            .channel("ch")
            .slot("u", Some("ch"))
            .state(
                StateModel::new("parked")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::HoldSlot, "u")),
            );
        let diags = analyze(&two_box_scenario(a, b));
        assert!(diags.iter().any(|d| d.code == "AZ502"), "{diags:?}");
    }

    /// Unbound links (no binding, ambiguous inference) produce no tunnel
    /// and therefore no findings.
    #[test]
    fn unbound_link_is_skipped() {
        let a = ProgramModel::new("a")
            .channel("ch")
            .channel("ch2")
            .slot("s", Some("ch"))
            .state(
                StateModel::new("linked")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s")),
            );
        let b = ProgramModel::new("b")
            .channel("ch")
            .slot("u", Some("ch"))
            .state(StateModel::new("parked").final_state());
        let sc = ScenarioModel::new("t")
            .program("a", a)
            .program("b", b)
            .with_topology(
                Topology::new()
                    .with_box("a")
                    .with_box("b")
                    .with_link("a", "b", 1),
            );
        // `a` has two channels and no binding: peer inference fails.
        assert!(analyze(&sc).is_empty());
    }
}
