//! Pass 6: signaling-race analysis (`AZ6xx`).
//!
//! The slot protocol resolves the Fig.-10 open/open race by initiator:
//! when both ends send `open` on the same tunnel, the *channel
//! initiator's* open wins ([`RECV_RULES`]'s `Opening + open → Opened`
//! row is gated on `initiator`). That resolution presumes each channel
//! has exactly one initiating side. The pass checks the cross-box
//! conditions under which it breaks down:
//!
//! * `AZ601` (error) — *double initiator*: both programs on a bound link
//!   can reach an `openChannel` of their side of it. Whichever wins the
//!   connect race, each box believes it is the initiator, so a
//!   subsequent open/open crossing on the slot pair has no agreed
//!   winner and both sides can deadlock in `Opening`.
//! * `AZ602` (warning) — *close/progress crossing wedge*: a non-final
//!   state waits *only* on slot-progress events (`isOpened`/`isFlowing`)
//!   of paired slots, with no timer, close, or channel-down escape,
//!   while the peer is able to close the paired slot underneath. The
//!   peer's `close` can cross with the awaited progress signal in
//!   flight, after which the awaited event never fires and the box is
//!   wedged in a non-final state forever.
//!
//! [`RECV_RULES`]: ipmedia_core::slot::RECV_RULES

use crate::diag::Diagnostic;
use crate::interproc::{can_close, tunnels};
use ipmedia_core::program::model::{ModelEffect, ModelTrigger, ProgramModel, ScenarioModel};

/// Run the race pass over every tunnel of the scenario.
pub fn analyze(scenario: &ScenarioModel) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for tunnel in tunnels(scenario) {
        let (Some(pa), Some(pb)) = (
            scenario.program_for(&tunnel.box_a),
            scenario.program_for(&tunnel.box_b),
        ) else {
            continue;
        };
        let opens = |p: &ProgramModel, ch: &str| -> Option<String> {
            p.reachable_effects()
                .iter()
                .find(|(_, e)| matches!(e, ModelEffect::OpenChannel(c) if c == ch))
                .map(|(state, _)| (*state).to_string())
        };
        if let (Some(at_a), Some(at_b)) = (opens(pa, &tunnel.chan_a), opens(pb, &tunnel.chan_b)) {
            diags.push(
                Diagnostic::error(
                    "AZ601",
                    format!(
                        "both `{}` (in `{at_a}`) and `{}` (in `{at_b}`) can initiate \
                         the channel between them: the Fig.-10 open/open race on \
                         their slot pair has no agreed winner",
                        tunnel.box_a, tunnel.box_b
                    ),
                )
                .in_program(&tunnel.box_a)
                .with_note(
                    "race resolution is by channel initiator; with two initiators \
                     each side expects its own open to win and both can wedge in \
                     `opening`. Make one side passive (wait for channelUp instead \
                     of openChannel)"
                        .to_string(),
                ),
            );
        }

        check_wedge(&tunnel.box_a, pa, pb, &tunnel, false, &mut diags);
        check_wedge(&tunnel.box_b, pb, pa, &tunnel, true, &mut diags);
    }
    diags
}

/// AZ602 for one side of a tunnel.
fn check_wedge(
    box_name: &str,
    own: &ProgramModel,
    peer: &ProgramModel,
    tunnel: &crate::interproc::Tunnel,
    flipped: bool,
    diags: &mut Vec<Diagnostic>,
) {
    let peer_chan = if flipped {
        &tunnel.chan_a
    } else {
        &tunnel.chan_b
    };
    let reachable = own.reachable_states();
    for st in &own.states {
        if st.is_final || st.transitions.is_empty() || !reachable.contains(st.name.as_str()) {
            continue;
        }
        // Every exit must be slot progress on a paired slot; any other
        // trigger (timer, isClosed, channelDown, user, ...) is an escape.
        let mut awaited: Vec<(&str, &str)> = Vec::new(); // (slot, paired)
        let all_paired_progress = st.transitions.iter().all(|t| match &t.trigger {
            ModelTrigger::SlotOpened(s) | ModelTrigger::SlotFlowing(s) => {
                match tunnel.paired_slot(box_name, s) {
                    Some(p) => {
                        awaited.push((s.as_str(), p));
                        true
                    }
                    None => false,
                }
            }
            _ => false,
        });
        if !all_paired_progress || awaited.is_empty() {
            continue;
        }
        // Only a peer that can actually close underneath makes the
        // crossing reachable.
        let closable: Vec<&(&str, &str)> = awaited
            .iter()
            .filter(|(_, paired)| can_close(peer, paired, peer_chan))
            .collect();
        if closable.len() != awaited.len() {
            continue;
        }
        let slots: Vec<&str> = awaited.iter().map(|(s, _)| *s).collect();
        diags.push(
            Diagnostic::warning(
                "AZ602",
                format!(
                    "state `{}` waits only on progress of slot(s) `{}` while peer \
                     `{}` can close the paired slot(s) underneath",
                    st.name,
                    slots.join("`, `"),
                    tunnel.peer_of(box_name)
                ),
            )
            .in_program(box_name)
            .at_state(&st.name)
            .with_note(
                "a close/progress crossing leaves the awaited event permanently \
                 unfired and the box wedged in a non-final state; add an \
                 isClosed/channelDown/timer escape"
                    .to_string(),
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipmedia_core::path::Topology;
    use ipmedia_core::program::model::{GoalAnnotation, StateModel};
    use ipmedia_core::{GoalKind, SlotAction};

    fn two_box_scenario(a: ProgramModel, b: ProgramModel) -> ScenarioModel {
        ScenarioModel::new("t")
            .program("a", a)
            .program("b", b)
            .with_topology(
                Topology::new()
                    .with_box("a")
                    .with_box("b")
                    .with_link("a", "b", 1),
            )
            .bind("a", "ch", "b")
            .bind("b", "ch", "a")
    }

    fn opener(name: &str) -> ProgramModel {
        ProgramModel::new(name)
            .channel("ch")
            .slot("s", Some("ch"))
            .state(StateModel::new("boot").on(
                ModelTrigger::Start,
                "linked",
                vec![ModelEffect::OpenChannel("ch".into())],
            ))
            .state(
                StateModel::new("linked")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s")),
            )
    }

    fn passive(name: &str) -> ProgramModel {
        ProgramModel::new(name)
            .channel("ch")
            .slot("s", Some("ch"))
            .state(StateModel::new("boot").on(
                ModelTrigger::ChannelUp("ch".into()),
                "linked",
                vec![],
            ))
            .state(
                StateModel::new("linked")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s")),
            )
    }

    #[test]
    fn double_initiator_is_az601() {
        let diags = analyze(&two_box_scenario(opener("a"), opener("b")));
        assert!(diags.iter().any(|d| d.code == "AZ601"), "{diags:?}");
    }

    #[test]
    fn single_initiator_is_clean() {
        let diags = analyze(&two_box_scenario(opener("a"), passive("b")));
        assert!(!diags.iter().any(|d| d.code == "AZ601"), "{diags:?}");
    }

    #[test]
    fn environment_established_channel_is_clean() {
        let diags = analyze(&two_box_scenario(passive("a"), passive("b")));
        assert!(!diags.iter().any(|d| d.code == "AZ601"), "{diags:?}");
    }

    /// Waiting only on slot progress while the peer can close underneath.
    #[test]
    fn progress_wait_against_closing_peer_is_az602() {
        let a = ProgramModel::new("a")
            .channel("ch")
            .slot("s", Some("ch"))
            .state(StateModel::new("waiting").on(
                ModelTrigger::SlotOpened("s".into()),
                "linked",
                vec![],
            ))
            .state(
                StateModel::new("linked")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s")),
            );
        let b = ProgramModel::new("b")
            .channel("ch")
            .slot("u", Some("ch"))
            .state(
                StateModel::new("open")
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "u"))
                    .on(
                        ModelTrigger::User("bye".into()),
                        "done",
                        vec![ModelEffect::UserAction {
                            slot: "u".into(),
                            action: SlotAction::Close,
                        }],
                    ),
            )
            .state(StateModel::new("done").final_state());
        let diags = analyze(&two_box_scenario(a, b));
        assert!(diags.iter().any(|d| d.code == "AZ602"), "{diags:?}");
    }

    /// The same wait is clean when the peer never closes...
    #[test]
    fn progress_wait_against_steady_peer_is_clean() {
        let a = ProgramModel::new("a")
            .channel("ch")
            .slot("s", Some("ch"))
            .state(StateModel::new("waiting").on(
                ModelTrigger::SlotOpened("s".into()),
                "linked",
                vec![],
            ))
            .state(
                StateModel::new("linked")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s")),
            );
        let b = ProgramModel::new("b")
            .channel("ch")
            .slot("u", Some("ch"))
            .state(
                StateModel::new("open")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "u")),
            );
        let diags = analyze(&two_box_scenario(a, b));
        assert!(!diags.iter().any(|d| d.code == "AZ602"), "{diags:?}");
    }

    /// ...and when the waiting state has a non-progress escape.
    #[test]
    fn progress_wait_with_escape_is_clean() {
        let a = ProgramModel::new("a")
            .channel("ch")
            .slot("s", Some("ch"))
            .timer("giveup")
            .state(
                StateModel::new("waiting")
                    .on(ModelTrigger::SlotOpened("s".into()), "linked", vec![])
                    .on(ModelTrigger::Timer("giveup".into()), "done", vec![]),
            )
            .state(
                StateModel::new("linked")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s")),
            )
            .state(StateModel::new("done").final_state());
        let b = ProgramModel::new("b")
            .channel("ch")
            .slot("u", Some("ch"))
            .state(
                StateModel::new("open")
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "u"))
                    .on(
                        ModelTrigger::User("bye".into()),
                        "done",
                        vec![ModelEffect::UserAction {
                            slot: "u".into(),
                            action: SlotAction::Close,
                        }],
                    ),
            )
            .state(StateModel::new("done").final_state());
        let diags = analyze(&two_box_scenario(a, b));
        assert!(!diags.iter().any(|d| d.code == "AZ602"), "{diags:?}");
    }
}
