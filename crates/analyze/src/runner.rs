//! Deterministic parallel analysis runner: one scenario per worker,
//! results stitched back in input order so rendered and JSONL output are
//! byte-identical at any thread count (the same slot-per-item discipline
//! as `ipmedia_mck::run_campaign`).
//!
//! The `ipmedia-lint` CLI is a thin argument-parsing shell around this
//! module, so the determinism test exercises exactly the code path the
//! binary ships.

use crate::diag::{Diagnostic, Severity};
use crate::sarif::Baseline;
use crate::{analyze_scenario, sort_report};
use ipmedia_core::program::model::ScenarioModel;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Outcome of analyzing a scenario set.
pub struct RunReport {
    /// Findings not suppressed by the baseline, in stable report order.
    pub kept: Vec<Diagnostic>,
    /// Findings the baseline suppressed, in stable report order.
    pub suppressed: Vec<Diagnostic>,
}

impl RunReport {
    /// Count of kept findings at or above the deny threshold:
    /// errors always; warnings too iff `deny_warnings`.
    pub fn denied(&self, deny_warnings: bool) -> usize {
        self.kept
            .iter()
            .filter(|d| d.severity == Severity::Error || deny_warnings)
            .count()
    }

    /// Rendered rustc-style report, one blank line between findings.
    pub fn render(&self) -> String {
        self.kept
            .iter()
            .map(Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n\n")
    }

    /// One JSONL line per kept finding.
    pub fn to_jsonl(&self) -> String {
        self.kept
            .iter()
            .map(Diagnostic::to_json)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

/// Analyze every scenario, spreading scenarios over `threads` workers
/// (`0` = all cores), then merge, re-sort, and apply the baseline. The
/// result is identical at any thread count: workers fill one result slot
/// per scenario and the merge walks slots in input order.
pub fn run(scenarios: &[ScenarioModel], threads: usize, baseline: &Baseline) -> RunReport {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    let workers = threads.min(scenarios.len()).max(1);
    let per_scenario: Vec<Vec<Diagnostic>> = if workers <= 1 {
        scenarios.iter().map(analyze_scenario).collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Vec<Diagnostic>>>> =
            scenarios.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= scenarios.len() {
                        break;
                    }
                    let diags = analyze_scenario(&scenarios[i]);
                    *slots[i].lock().expect("result slot") = Some(diags);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("result slot")
                    .expect("worker filled slot")
            })
            .collect()
    };
    let mut all: Vec<Diagnostic> = per_scenario.into_iter().flatten().collect();
    sort_report(&mut all);
    let (kept, suppressed) = baseline.apply(all);
    RunReport { kept, suppressed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipmedia_core::path::Topology;
    use ipmedia_core::program::model::{ProgramModel, StateModel};

    fn noisy_scenario(name: &str) -> ScenarioModel {
        // An isolated box (AZ404 warning) plus an unreachable state
        // (AZ301 warning): deterministic, multi-finding input.
        ScenarioModel::new(name)
            .program(
                "a",
                ProgramModel::new("a")
                    .state(StateModel::new("init").final_state())
                    .state(StateModel::new("orphan").final_state()),
            )
            .with_topology(Topology::new().with_box("a"))
    }

    #[test]
    fn output_is_identical_across_thread_counts() {
        let scenarios: Vec<ScenarioModel> =
            (0..6).map(|i| noisy_scenario(&format!("s{i}"))).collect();
        let base = Baseline::default();
        let one = run(&scenarios, 1, &base);
        for threads in [2, 4, 8] {
            let n = run(&scenarios, threads, &base);
            assert_eq!(one.render(), n.render(), "threads={threads}");
            assert_eq!(one.to_jsonl(), n.to_jsonl(), "threads={threads}");
        }
    }

    #[test]
    fn baseline_moves_findings_to_suppressed() {
        let scenarios = vec![noisy_scenario("s")];
        let all = run(&scenarios, 1, &Baseline::default());
        assert!(!all.kept.is_empty());
        let base = Baseline::parse(&crate::sarif::Baseline::render(&all.kept));
        let none = run(&scenarios, 1, &base);
        assert!(none.kept.is_empty(), "{:?}", none.kept);
        assert_eq!(none.suppressed.len(), all.kept.len());
        assert_eq!(none.denied(true), 0);
    }

    #[test]
    fn denied_counts_respect_severity_threshold() {
        let scenarios = vec![noisy_scenario("s")];
        let report = run(&scenarios, 1, &Baseline::default());
        // Only warnings in this input.
        assert_eq!(report.denied(false), 0);
        assert!(report.denied(true) > 0);
    }
}
