//! Pass 3: leak / termination lints (`AZ3xx`).
//!
//! * `AZ301` (warning) — a declared state is unreachable from the initial
//!   state;
//! * `AZ302` (error) — a non-final state has no outgoing transitions: the
//!   program wedges there with no way to make progress;
//! * `AZ303` (warning) — at a resting point (a final state, or a
//!   transition that `Terminate`s) some slot may still be live (`opening`,
//!   `opened` or `flowing`) while no goal in that state claims it: the
//!   media channel leaks, with nothing left responsible for closing it.
//!
//! The liveness facts come from the conformance pass's abstract slot map,
//! so `AZ303` only fires when some execution actually reaches the resting
//! point with the slot possibly open.

use crate::conformance::{AbsMap, AbsState};
use crate::diag::Diagnostic;
use ipmedia_core::program::model::{ModelEffect, ProgramModel, StateModel};
use std::collections::BTreeSet;

fn possibly_live(set: &BTreeSet<AbsState>) -> bool {
    set.iter().any(|abs| match abs {
        AbsState::Unbound => false,
        AbsState::In(s) => s.is_live(),
    })
}

fn claimed_slots(state: &StateModel) -> BTreeSet<&str> {
    state
        .goals
        .iter()
        .flat_map(|g| g.slots.iter().map(String::as_str))
        .collect()
}

fn check_resting_point(
    model: &ProgramModel,
    state: &StateModel,
    abs: &AbsMap,
    how: &str,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(slots) = abs.get(&state.name) else {
        return; // unreachable: AZ301 already covers it
    };
    let claimed = claimed_slots(state);
    for (slot, set) in slots {
        if possibly_live(set) && !claimed.contains(slot.as_str()) {
            let states: Vec<&str> = set.iter().map(|a| a.name()).collect();
            diags.push(
                Diagnostic::warning("AZ303", format!("slot `{slot}` may be left open {how}"))
                    .in_program(&model.name)
                    .at_state(&state.name)
                    .with_note(format!(
                        "possible protocol states: {}; no goal in this state \
                     claims `{slot}`, so nothing will ever close it",
                        states.join(", ")
                    )),
            );
        }
    }
}

/// Run the leak / termination pass. `abs` is the stable abstract slot map
/// produced by [`crate::conformance::analyze`].
pub fn analyze(model: &ProgramModel, abs: &AbsMap) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let reachable = model.reachable_states();
    for st in &model.states {
        if !reachable.contains(st.name.as_str()) {
            diags.push(
                Diagnostic::warning(
                    "AZ301",
                    format!(
                        "state `{}` is unreachable from `{}`",
                        st.name, model.initial
                    ),
                )
                .in_program(&model.name)
                .at_state(&st.name),
            );
            continue;
        }
        if !st.is_final && st.transitions.is_empty() {
            diags.push(
                Diagnostic::error(
                    "AZ302",
                    format!("non-final state `{}` has no outgoing transitions", st.name),
                )
                .in_program(&model.name)
                .at_state(&st.name)
                .with_note(
                    "the program wedges here; mark the state final or add a transition".to_string(),
                ),
            );
        }
        if st.is_final {
            check_resting_point(model, st, abs, "when the program rests here", &mut diags);
        }
    }
    // Terminate leaks: judge the slot map *after* the transition's effects,
    // i.e. at the target state's entry — CloseChannel before Terminate
    // legitimately unbinds.
    for st in &model.states {
        if !reachable.contains(st.name.as_str()) {
            continue;
        }
        for t in &st.transitions {
            if !t.effects.contains(&ModelEffect::Terminate) {
                continue;
            }
            if let Some(target) = model.state_named(&t.to) {
                check_resting_point(
                    model,
                    target,
                    abs,
                    &format!("when the program terminates via `{}`", t.trigger),
                    &mut diags,
                );
            }
        }
    }
    diags.sort_by_key(Diagnostic::render);
    diags.dedup();
    diags
}

/// Leak-related lints on one slot's final abstract set — exported for the
/// CLI's `--explain` output.
pub fn describe_set(set: &BTreeSet<AbsState>) -> String {
    let names: Vec<&str> = set.iter().map(|a| a.name()).collect();
    let live = set
        .iter()
        .filter(|a| matches!(a, AbsState::In(s) if s.is_live()))
        .count();
    format!("{{{}}} ({live} live)", names.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance;
    use ipmedia_core::program::model::{GoalAnnotation, ModelTrigger, StateModel};
    use ipmedia_core::GoalKind;

    #[test]
    fn unreachable_state_flagged() {
        let m = ProgramModel::new("p")
            .state(StateModel::new("init").final_state())
            .state(StateModel::new("island").final_state());
        let (_, abs) = conformance::analyze(&m);
        let diags = analyze(&m, &abs);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "AZ301" && d.message.contains("island")),
            "{diags:?}"
        );
    }

    #[test]
    fn dead_end_flagged() {
        let m = ProgramModel::new("p")
            .state(StateModel::new("init").on(ModelTrigger::Start, "stuck", vec![]))
            .state(StateModel::new("stuck"));
        let (_, abs) = conformance::analyze(&m);
        let diags = analyze(&m, &abs);
        assert!(diags.iter().any(|d| d.code == "AZ302"), "{diags:?}");
    }

    /// A slot driven open by a goal, then abandoned in a final state with
    /// no goal claiming it: the channel leaks.
    #[test]
    fn abandoned_live_slot_flagged() {
        let m = ProgramModel::new("p")
            .channel("c")
            .slot("s", Some("c"))
            .state(
                StateModel::new("calling")
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s"))
                    .on(ModelTrigger::SlotFlowing("s".into()), "done", vec![]),
            )
            .state(StateModel::new("done").final_state());
        let (_, abs) = conformance::analyze(&m);
        let diags = analyze(&m, &abs);
        assert!(
            diags
                .iter()
                .any(|d| d.code == "AZ303" && d.message.contains("`s`")),
            "{diags:?}"
        );
    }

    /// Closing the channel before resting is clean: the slot is unbound.
    #[test]
    fn closed_channel_does_not_leak() {
        let m = ProgramModel::new("p")
            .channel("c")
            .slot("s", Some("c"))
            .state(
                StateModel::new("calling")
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s"))
                    .on(
                        ModelTrigger::SlotFlowing("s".into()),
                        "done",
                        vec![
                            ModelEffect::CloseChannel("c".into()),
                            ModelEffect::Terminate,
                        ],
                    ),
            )
            .state(StateModel::new("done").final_state());
        let (_, abs) = conformance::analyze(&m);
        let diags = analyze(&m, &abs);
        assert!(!diags.iter().any(|d| d.code == "AZ303"), "{diags:?}");
    }

    /// A final state whose goals still claim the slot is a legitimate
    /// resting point (e.g. a server dwelling in `linked`).
    #[test]
    fn claimed_slot_at_final_state_is_clean() {
        let m = ProgramModel::new("p")
            .channel("c")
            .slot("s", Some("c"))
            .state(
                StateModel::new("linked")
                    .final_state()
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s")),
            );
        let (_, abs) = conformance::analyze(&m);
        assert!(!analyze(&m, &abs).iter().any(|d| d.code == "AZ303"));
    }
}
