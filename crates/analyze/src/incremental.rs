//! Content-addressed incremental analysis: fingerprint every scenario and
//! program over its canonical `.ipm` form, cache per-pass verdicts in a
//! persistent JSONL file, and re-run only the passes whose inputs changed.
//!
//! # Fingerprint scheme
//!
//! A fingerprint is a 64-bit FNV-1a hash (hex, 16 chars) over
//! `"ipm-analyzer-v{ANALYZER_VERSION}\n"` plus the canonical `.ipm` text
//! of the input:
//!
//! * **scenario fingerprint** — [`crate::to_ipm`] of
//!   [`ScenarioModel::canonicalized`] (boxes and programs sorted by box
//!   name; every other order is analysis-visible and preserved);
//! * **program fingerprint** — [`crate::parse::program_ipm`] of one
//!   program section (covers the box name, so the same model bound to a
//!   different box is a different cache key);
//! * **topology fingerprint** — [`crate::parse::topology_ipm`] of the
//!   canonicalized scenario (`box`/`link`/`bind` lines only).
//!
//! The `ANALYZER_VERSION` salt makes every fingerprint change when pass
//! behavior changes, so a stale cache can never replay outdated verdicts.
//!
//! # Invalidation rules
//!
//! The dependency map is scenario → {topology/binds, programs}. A cached
//! scenario verdict is replayed only when the *whole-scenario* fingerprint
//! hits; cached per-program verdicts are replayed per program fingerprint.
//! Editing one program misses that program's four pass families plus the
//! three cross-box scenario passes; editing topology or bindings misses
//! only the scenario passes (all program entries still hit).
//!
//! # Soundness
//!
//! A cache hit means the canonical `.ipm` text is byte-identical to the
//! text the cached diagnostics were computed from (same analyzer
//! version). Since the canonical form only normalizes orders no pass can
//! observe (pinned by the order-scramble property test), hit ⇔ identical
//! analysis input, and replaying is exactly as sound as re-running.
//! Entries that fail to parse, carry an unknown diagnostic code, or were
//! written by a different `ANALYZER_VERSION` are evicted and counted,
//! never trusted.

use crate::diag::{intern_code, parse_severity, Diagnostic};
use crate::parse::{program_ipm, to_ipm, topology_ipm};
use crate::sarif::Baseline;
use crate::{dataflow, race, runner::RunReport, sort_report, wellformed};
use ipmedia_core::program::model::{ProgramModel, ScenarioModel};
use ipmedia_obs::{json_array, JsonObj};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Version salt folded into every fingerprint. Bump whenever any pass's
/// observable output can change, so old caches self-invalidate.
pub const ANALYZER_VERSION: u32 = 1;

/// 64-bit FNV-1a.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprint of arbitrary canonical text under the analyzer-version salt.
pub fn fingerprint_text(text: &str) -> String {
    let mut h = fnv64(format!("ipm-analyzer-v{ANALYZER_VERSION}\n").as_bytes());
    for &b in text.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Whole-scenario fingerprint over the canonical `.ipm` form.
pub fn scenario_fingerprint(sc: &ScenarioModel) -> String {
    fingerprint_text(&to_ipm(&sc.canonicalized()))
}

/// Per-program fingerprint over one canonical `program` section.
pub fn program_fingerprint(box_name: &str, m: &ProgramModel) -> String {
    fingerprint_text(&program_ipm(box_name, m))
}

/// Topology-and-bindings fingerprint (`box`/`link`/`bind` lines).
pub fn topology_fingerprint(sc: &ScenarioModel) -> String {
    fingerprint_text(&topology_ipm(&sc.canonicalized()))
}

/// Clean/finding-bearing verdict for one analyzed scenario, keyed by its
/// content fingerprint — one line of the verified manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioVerdict {
    /// Scenario name (informational; the fingerprint is the key).
    pub name: String,
    /// Whole-scenario content fingerprint.
    pub fingerprint: String,
    /// True iff the analyzer found nothing (before baseline suppression).
    pub clean: bool,
}

/// Render verdicts as the plain-text verified manifest consumed by
/// `ipmedia-monitor --verified-manifest`: one `<fingerprint>
/// <clean|findings> <scenario>` line, `#` comments.
pub fn render_manifest(verdicts: &[ScenarioVerdict]) -> String {
    let mut out = String::from(
        "# ipmedia verified manifest: <fingerprint> <clean|findings> <scenario>\n\
         # Written by `ipmedia-lint --incremental --emit-manifest`; consumed by\n\
         # `ipmedia-monitor --verified-manifest`. Fingerprints are salted with\n\
         # the analyzer version, so a stale manifest never matches.\n",
    );
    for v in verdicts {
        out.push_str(&v.fingerprint);
        out.push(' ');
        out.push_str(if v.clean { "clean" } else { "findings" });
        out.push(' ');
        out.push_str(&v.name);
        out.push('\n');
    }
    out
}

/// Counters describing what one incremental run actually executed.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Scenarios analyzed.
    pub scenarios: usize,
    /// Scenarios fully replayed from cache (scenario + all program hits).
    pub full_hits: usize,
    /// Scenarios whose cross-box passes had to re-run.
    pub scenario_misses: usize,
    /// `analyze_program` executions (one per missed program entry).
    pub program_runs: usize,
    /// Individual cross-box pass executions (wellformed, dataflow, race).
    pub scenario_pass_runs: usize,
    /// Individual program-pass-family executions (structural,
    /// conformance, conflict, leak) — four per `analyze_program` run.
    pub program_pass_runs: usize,
    /// Cache entries evicted on load (corrupt, unknown code, or stale
    /// analyzer version); forward to `Registry::add_cache_evictions`.
    pub cache_evictions: u64,
    /// Names of the scenarios whose cross-box passes missed, input order.
    pub missed: Vec<String>,
    /// Per-scenario verdicts, input order, for the verified manifest.
    pub verdicts: Vec<ScenarioVerdict>,
}

impl IncrementalStats {
    /// One-line JSONL summary record (`record: "lint_incremental"`).
    pub fn to_json(&self) -> String {
        JsonObj::new()
            .str("record", "lint_incremental")
            .num("analyzer_version", u64::from(ANALYZER_VERSION))
            .num("scenarios", self.scenarios as u64)
            .num("full_hits", self.full_hits as u64)
            .num("scenario_misses", self.scenario_misses as u64)
            .num("program_runs", self.program_runs as u64)
            .num("scenario_pass_runs", self.scenario_pass_runs as u64)
            .num("program_pass_runs", self.program_pass_runs as u64)
            .num("cache_evictions", self.cache_evictions)
            .raw(
                "missed",
                &ipmedia_obs::json_str_array(self.missed.iter().map(String::as_str)),
            )
            .finish()
    }
}

/// Scenario → inputs dependency record, persisted alongside the entries
/// so a cache can explain *why* a scenario missed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepRecord {
    /// Topology/bindings fingerprint at the time the scenario was cached.
    pub topology_fp: String,
    /// Program fingerprints, scenario program order.
    pub program_fps: Vec<String>,
}

/// The persistent analysis cache: per-fingerprint diagnostic sets plus
/// the dependency map, loaded from and saved to `lint-cache.jsonl`.
#[derive(Debug, Default, Clone)]
pub struct AnalysisCache {
    /// Cross-box pass diagnostics keyed by whole-scenario fingerprint,
    /// stored in generation (pre-sort) order, scenario-tagged.
    scenario_entries: BTreeMap<String, Vec<Diagnostic>>,
    /// Program pass diagnostics keyed by program fingerprint, stored in
    /// generation order, program-tagged but scenario-untagged.
    program_entries: BTreeMap<String, Vec<Diagnostic>>,
    /// Dependency map: scenario fingerprint → input fingerprints.
    deps: BTreeMap<String, DepRecord>,
    /// Entries discarded on load instead of trusted.
    pub evictions: u64,
}

const CACHE_FILE: &str = "lint-cache.jsonl";

impl AnalysisCache {
    /// Number of cached scenario entries.
    pub fn scenario_len(&self) -> usize {
        self.scenario_entries.len()
    }

    /// Number of cached program entries.
    pub fn program_len(&self) -> usize {
        self.program_entries.len()
    }

    /// Dependency record for a cached scenario fingerprint.
    pub fn dep(&self, scenario_fp: &str) -> Option<&DepRecord> {
        self.deps.get(scenario_fp)
    }

    /// Load the cache from `dir/lint-cache.jsonl`. A missing file is an
    /// empty cache; unparseable lines, diagnostics with unknown codes,
    /// and files written by a different [`ANALYZER_VERSION`] are evicted
    /// (counted in [`AnalysisCache::evictions`]), never trusted.
    pub fn load(dir: &Path) -> Self {
        let mut cache = Self::default();
        let Ok(src) = std::fs::read_to_string(dir.join(CACHE_FILE)) else {
            return cache;
        };
        let mut version_ok = false;
        for line in src.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let Some(json::JVal::Obj(fields)) = json::parse(line) else {
                cache.evictions += 1;
                continue;
            };
            let get = |k: &str| fields.iter().find(|(n, _)| n == k).map(|(_, v)| v);
            match get("record").and_then(json::JVal::as_str) {
                Some("lint_cache_meta") => {
                    version_ok = get("analyzer_version").and_then(json::JVal::as_num)
                        == Some(u64::from(ANALYZER_VERSION));
                }
                Some("lint_cache_entry") => {
                    let parsed = (|| {
                        let kind = get("kind").and_then(json::JVal::as_str)?;
                        let fp = get("fp").and_then(json::JVal::as_str)?;
                        let Some(json::JVal::Arr(raw)) = get("diags") else {
                            return None;
                        };
                        let mut diags = Vec::with_capacity(raw.len());
                        for v in raw {
                            diags.push(diag_from_json(v)?);
                        }
                        Some((kind.to_string(), fp.to_string(), diags))
                    })();
                    match parsed {
                        Some((kind, fp, diags)) if kind == "scenario" => {
                            cache.scenario_entries.insert(fp, diags);
                        }
                        Some((kind, fp, diags)) if kind == "program" => {
                            cache.program_entries.insert(fp, diags);
                        }
                        _ => cache.evictions += 1,
                    }
                }
                Some("lint_cache_dep") => {
                    let parsed = (|| {
                        let sfp = get("scenario_fp").and_then(json::JVal::as_str)?;
                        let tfp = get("topology_fp").and_then(json::JVal::as_str)?;
                        let Some(json::JVal::Arr(raw)) = get("program_fps") else {
                            return None;
                        };
                        let mut fps = Vec::with_capacity(raw.len());
                        for v in raw {
                            fps.push(v.as_str()?.to_string());
                        }
                        Some((
                            sfp.to_string(),
                            DepRecord {
                                topology_fp: tfp.to_string(),
                                program_fps: fps,
                            },
                        ))
                    })();
                    match parsed {
                        Some((sfp, dep)) => {
                            cache.deps.insert(sfp, dep);
                        }
                        None => cache.evictions += 1,
                    }
                }
                _ => cache.evictions += 1,
            }
        }
        if !version_ok {
            // Written by a different analyzer version (or no meta line at
            // all): every entry is untrustworthy.
            cache.evictions += (cache.scenario_entries.len() + cache.program_entries.len()) as u64;
            cache.scenario_entries.clear();
            cache.program_entries.clear();
            cache.deps.clear();
        }
        cache
    }

    /// Persist the cache to `dir/lint-cache.jsonl` (atomic: temp file +
    /// rename).
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let tmp = dir.join(format!("{CACHE_FILE}.tmp.{}", std::process::id()));
        {
            let mut f = std::io::BufWriter::new(std::fs::File::create(&tmp)?);
            writeln!(
                f,
                "{}",
                JsonObj::new()
                    .str("record", "lint_cache_meta")
                    .num("analyzer_version", u64::from(ANALYZER_VERSION))
                    .finish()
            )?;
            for (kind, entries) in [
                ("scenario", &self.scenario_entries),
                ("program", &self.program_entries),
            ] {
                for (fp, diags) in entries {
                    writeln!(
                        f,
                        "{}",
                        JsonObj::new()
                            .str("record", "lint_cache_entry")
                            .str("kind", kind)
                            .str("fp", fp)
                            .raw("diags", &json_array(diags.iter().map(Diagnostic::to_json)))
                            .finish()
                    )?;
                }
            }
            for (sfp, dep) in &self.deps {
                writeln!(
                    f,
                    "{}",
                    JsonObj::new()
                        .str("record", "lint_cache_dep")
                        .str("scenario_fp", sfp)
                        .str("topology_fp", &dep.topology_fp)
                        .raw(
                            "program_fps",
                            &ipmedia_obs::json_str_array(
                                dep.program_fps.iter().map(String::as_str),
                            ),
                        )
                        .finish()
                )?;
            }
        }
        std::fs::rename(&tmp, dir.join(CACHE_FILE))
    }
}

/// Rebuild a [`Diagnostic`] from its cached JSON object. `None` (and
/// thus eviction) on unknown code, unknown severity, or missing fields.
fn diag_from_json(v: &json::JVal) -> Option<Diagnostic> {
    let json::JVal::Obj(fields) = v else {
        return None;
    };
    let get = |k: &str| {
        fields
            .iter()
            .find(|(n, _)| n == k)
            .and_then(|(_, v)| v.as_str())
    };
    let code = intern_code(get("code")?)?;
    let severity = parse_severity(get("severity")?)?;
    let mut d = match severity {
        crate::Severity::Error => Diagnostic::error(code, get("message")?),
        crate::Severity::Warning => Diagnostic::warning(code, get("message")?),
    };
    d.scenario = get("scenario").map(str::to_string);
    d.program = get("program").map(str::to_string);
    d.state = get("state").map(str::to_string);
    d.note = get("note").map(str::to_string);
    Some(d)
}

/// Per-program work item computed by a worker.
struct ProgramWork {
    fp: String,
    /// Generation-order diagnostics, program-tagged, scenario-untagged.
    /// `None` means the cache already holds this fingerprint.
    fresh: Option<Vec<Diagnostic>>,
}

/// Per-scenario work item computed by a worker.
struct ScenarioWork {
    scenario_fp: String,
    topology_fp: String,
    /// Cross-box pass diagnostics (generation order, scenario-tagged);
    /// `None` on a scenario-fingerprint hit.
    fresh_scenario: Option<Vec<Diagnostic>>,
    programs: Vec<ProgramWork>,
}

/// Run the cross-box passes exactly as `analyze_scenario` does, with the
/// scenario tag defaulted.
fn run_scenario_passes(sc: &ScenarioModel) -> Vec<Diagnostic> {
    let mut diags = wellformed::analyze(sc);
    diags.extend(dataflow::analyze(sc));
    diags.extend(race::analyze(sc));
    for d in &mut diags {
        if d.scenario.is_none() {
            d.scenario = Some(sc.name.clone());
        }
    }
    diags
}

/// Run the program passes exactly as `analyze_scenario` does, with the
/// program tag defaulted to the box name and the scenario tag left empty
/// (filled in at replay time).
fn run_program_passes(box_name: &str, model: &ProgramModel) -> Vec<Diagnostic> {
    crate::analyze_program(model)
        .into_iter()
        .map(|mut d| {
            if d.program.is_none() {
                d.program = Some(box_name.to_string());
            }
            d
        })
        .collect()
}

fn analyze_one(sc: &ScenarioModel, cache: &AnalysisCache) -> ScenarioWork {
    let scenario_fp = scenario_fingerprint(sc);
    let topology_fp = topology_fingerprint(sc);
    let fresh_scenario = if cache.scenario_entries.contains_key(&scenario_fp) {
        None
    } else {
        Some(run_scenario_passes(sc))
    };
    let programs = sc
        .programs
        .iter()
        .map(|(box_name, model)| {
            let fp = program_fingerprint(box_name, model);
            let fresh = if cache.program_entries.contains_key(&fp) {
                None
            } else {
                Some(run_program_passes(box_name, model))
            };
            ProgramWork { fp, fresh }
        })
        .collect();
    ScenarioWork {
        scenario_fp,
        topology_fp,
        fresh_scenario,
        programs,
    }
}

/// Incremental counterpart of [`crate::runner::run`]: analyze every
/// scenario, replaying cached verdicts for unchanged inputs, re-running
/// only missed passes, and folding fresh results back into `cache`. The
/// report is byte-identical to a cold [`crate::runner::run`] at any
/// thread count (pinned by the cache-correctness tests).
pub fn run_incremental(
    scenarios: &[ScenarioModel],
    threads: usize,
    baseline: &Baseline,
    cache: &mut AnalysisCache,
) -> (RunReport, IncrementalStats) {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        threads
    };
    let workers = threads.min(scenarios.len()).max(1);
    // Phase 1: fingerprint + run misses, slot-per-scenario so the merge
    // below is input-ordered and deterministic at any thread count.
    let work: Vec<ScenarioWork> = if workers <= 1 {
        scenarios.iter().map(|sc| analyze_one(sc, cache)).collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<ScenarioWork>>> =
            scenarios.iter().map(|_| Mutex::new(None)).collect();
        let shared: &AnalysisCache = cache;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= scenarios.len() {
                        break;
                    }
                    let w = analyze_one(&scenarios[i], shared);
                    *slots[i].lock().expect("result slot") = Some(w);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("result slot")
                    .expect("worker filled slot")
            })
            .collect()
    };
    // Phase 2: serial merge in input order — update the cache, count
    // what actually ran, and assemble the per-scenario reports exactly
    // as `analyze_scenario` would have.
    let mut stats = IncrementalStats {
        scenarios: scenarios.len(),
        cache_evictions: cache.evictions,
        ..IncrementalStats::default()
    };
    let mut all: Vec<Diagnostic> = Vec::new();
    for (sc, w) in scenarios.iter().zip(work) {
        let mut full_hit = w.fresh_scenario.is_none();
        if let Some(fresh) = w.fresh_scenario {
            stats.scenario_misses += 1;
            stats.scenario_pass_runs += 3;
            stats.missed.push(sc.name.clone());
            cache.scenario_entries.insert(w.scenario_fp.clone(), fresh);
        }
        let mut per_scenario: Vec<Diagnostic> = cache.scenario_entries[&w.scenario_fp].clone();
        for pw in w.programs {
            if let Some(fresh) = pw.fresh {
                full_hit = false;
                stats.program_runs += 1;
                stats.program_pass_runs += 4;
                cache.program_entries.insert(pw.fp.clone(), fresh);
            }
            per_scenario.extend(cache.program_entries[&pw.fp].iter().map(|d| {
                let mut d = d.clone();
                if d.scenario.is_none() {
                    d.scenario = Some(sc.name.clone());
                }
                d
            }));
        }
        cache.deps.insert(
            w.scenario_fp.clone(),
            DepRecord {
                topology_fp: w.topology_fp,
                program_fps: sc
                    .programs
                    .iter()
                    .map(|(b, m)| program_fingerprint(b, m))
                    .collect(),
            },
        );
        if full_hit {
            stats.full_hits += 1;
        }
        sort_report(&mut per_scenario);
        stats.verdicts.push(ScenarioVerdict {
            name: sc.name.clone(),
            fingerprint: w.scenario_fp,
            clean: per_scenario.is_empty(),
        });
        all.extend(per_scenario);
    }
    sort_report(&mut all);
    let (kept, suppressed) = baseline.apply(all);
    (RunReport { kept, suppressed }, stats)
}

/// Minimal recursive-descent JSON reader for the cache file. The cache
/// is written by [`JsonObj`], but load must survive arbitrary corruption,
/// so every failure path is `None` (→ eviction), never a panic.
mod json {
    /// A parsed JSON value (no floats or nulls: the cache never emits
    /// them, and an entry containing one is corrupt anyway).
    #[derive(Debug, PartialEq)]
    pub enum JVal {
        /// String literal.
        S(String),
        /// Non-negative integer.
        N(u64),
        /// Boolean.
        B(bool),
        /// Array.
        Arr(Vec<JVal>),
        /// Object, field order preserved.
        Obj(Vec<(String, JVal)>),
    }

    impl JVal {
        pub fn as_str(&self) -> Option<&str> {
            match self {
                JVal::S(s) => Some(s),
                _ => None,
            }
        }

        pub fn as_num(&self) -> Option<u64> {
            match self {
                JVal::N(n) => Some(*n),
                _ => None,
            }
        }
    }

    pub fn parse(src: &str) -> Option<JVal> {
        let b = src.as_bytes();
        let mut i = 0;
        let v = value(b, &mut i)?;
        skip_ws(b, &mut i);
        (i == b.len()).then_some(v)
    }

    fn skip_ws(b: &[u8], i: &mut usize) {
        while *i < b.len() && (b[*i] == b' ' || b[*i] == b'\t' || b[*i] == b'\r' || b[*i] == b'\n')
        {
            *i += 1;
        }
    }

    fn value(b: &[u8], i: &mut usize) -> Option<JVal> {
        skip_ws(b, i);
        match b.get(*i)? {
            b'"' => string(b, i).map(JVal::S),
            b'{' => object(b, i),
            b'[' => array(b, i),
            b't' => literal(b, i, "true").then_some(JVal::B(true)),
            b'f' => literal(b, i, "false").then_some(JVal::B(false)),
            b'0'..=b'9' => number(b, i),
            _ => None,
        }
    }

    fn literal(b: &[u8], i: &mut usize, word: &str) -> bool {
        if b[*i..].starts_with(word.as_bytes()) {
            *i += word.len();
            true
        } else {
            false
        }
    }

    fn number(b: &[u8], i: &mut usize) -> Option<JVal> {
        let start = *i;
        while *i < b.len() && b[*i].is_ascii_digit() {
            *i += 1;
        }
        std::str::from_utf8(&b[start..*i])
            .ok()?
            .parse()
            .ok()
            .map(JVal::N)
    }

    fn string(b: &[u8], i: &mut usize) -> Option<String> {
        *i += 1; // opening quote
        let mut out: Vec<u8> = Vec::new();
        loop {
            match *b.get(*i)? {
                b'"' => {
                    *i += 1;
                    return String::from_utf8(out).ok();
                }
                b'\\' => {
                    *i += 1;
                    match *b.get(*i)? {
                        b'"' => out.push(b'"'),
                        b'\\' => out.push(b'\\'),
                        b'/' => out.push(b'/'),
                        b'n' => out.push(b'\n'),
                        b'r' => out.push(b'\r'),
                        b't' => out.push(b'\t'),
                        b'u' => {
                            let hex = b.get(*i + 1..*i + 5)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            let c = char::from_u32(code)?;
                            let mut buf = [0u8; 4];
                            out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                            *i += 4;
                        }
                        _ => return None,
                    }
                    *i += 1;
                }
                _ => {
                    out.push(b[*i]);
                    *i += 1;
                }
            }
        }
    }

    fn array(b: &[u8], i: &mut usize) -> Option<JVal> {
        *i += 1; // '['
        let mut items = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b']') {
            *i += 1;
            return Some(JVal::Arr(items));
        }
        loop {
            items.push(value(b, i)?);
            skip_ws(b, i);
            match b.get(*i)? {
                b',' => *i += 1,
                b']' => {
                    *i += 1;
                    return Some(JVal::Arr(items));
                }
                _ => return None,
            }
        }
    }

    fn object(b: &[u8], i: &mut usize) -> Option<JVal> {
        *i += 1; // '{'
        let mut fields = Vec::new();
        skip_ws(b, i);
        if b.get(*i) == Some(&b'}') {
            *i += 1;
            return Some(JVal::Obj(fields));
        }
        loop {
            skip_ws(b, i);
            if b.get(*i) != Some(&b'"') {
                return None;
            }
            let k = string(b, i)?;
            skip_ws(b, i);
            if b.get(*i) != Some(&b':') {
                return None;
            }
            *i += 1;
            fields.push((k, value(b, i)?));
            skip_ws(b, i);
            match b.get(*i)? {
                b',' => *i += 1,
                b'}' => {
                    *i += 1;
                    return Some(JVal::Obj(fields));
                }
                _ => return None,
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn parses_nested_objects_arrays_and_escapes() {
            let v = parse(r#"{"a":"x\n\"y\"","n":42,"b":true,"arr":[{"k":"v"},"s"]}"#).unwrap();
            let JVal::Obj(fields) = v else { panic!() };
            assert_eq!(fields[0].1.as_str(), Some("x\n\"y\""));
            assert_eq!(fields[1].1.as_num(), Some(42));
            assert_eq!(fields[2].1, JVal::B(true));
            let JVal::Arr(items) = &fields[3].1 else {
                panic!()
            };
            assert_eq!(items.len(), 2);
        }

        #[test]
        fn rejects_trailing_garbage_and_truncation() {
            assert!(parse(r#"{"a":1} extra"#).is_none());
            assert!(parse(r#"{"a":"#).is_none());
            assert!(parse(r#"{"a" 1}"#).is_none());
            assert!(parse("").is_none());
        }

        #[test]
        fn parses_unicode_escapes() {
            let v = parse(r#""Aé""#).unwrap();
            assert_eq!(v.as_str(), Some("Aé"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipmedia_core::path::Topology;
    use ipmedia_core::program::model::StateModel;

    fn scenario(name: &str) -> ScenarioModel {
        ScenarioModel::new(name)
            .program(
                "a",
                ProgramModel::new("a")
                    .state(StateModel::new("init").final_state())
                    .state(StateModel::new("orphan").final_state()),
            )
            .with_topology(Topology::new().with_box("a"))
    }

    #[test]
    fn fingerprints_are_stable_and_name_sensitive() {
        let sc = scenario("s");
        assert_eq!(scenario_fingerprint(&sc), scenario_fingerprint(&sc));
        assert_ne!(
            scenario_fingerprint(&sc),
            scenario_fingerprint(&scenario("other"))
        );
        assert_eq!(scenario_fingerprint(&sc).len(), 16);
    }

    #[test]
    fn cache_round_trips_through_disk() {
        let dir = std::env::temp_dir().join(format!("ipm-inc-rt-{}", std::process::id()));
        let scenarios = vec![scenario("s1"), scenario("s2")];
        let mut cache = AnalysisCache::default();
        let (cold, stats) = run_incremental(&scenarios, 1, &Baseline::default(), &mut cache);
        assert_eq!(stats.scenario_misses, 2);
        cache.save(&dir).unwrap();
        let mut reloaded = AnalysisCache::load(&dir);
        assert_eq!(reloaded.evictions, 0);
        assert_eq!(reloaded.scenario_len(), cache.scenario_len());
        let (warm, warm_stats) =
            run_incremental(&scenarios, 1, &Baseline::default(), &mut reloaded);
        assert_eq!(warm_stats.full_hits, 2);
        assert_eq!(
            warm_stats.scenario_pass_runs + warm_stats.program_pass_runs,
            0
        );
        assert_eq!(cold.render(), warm.render());
        assert_eq!(cold.to_jsonl(), warm.to_jsonl());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn version_mismatch_evicts_everything() {
        let dir = std::env::temp_dir().join(format!("ipm-inc-ver-{}", std::process::id()));
        let scenarios = vec![scenario("s")];
        let mut cache = AnalysisCache::default();
        let _ = run_incremental(&scenarios, 1, &Baseline::default(), &mut cache);
        cache.save(&dir).unwrap();
        let path = dir.join(super::CACHE_FILE);
        let doctored = std::fs::read_to_string(&path).unwrap().replace(
            &format!("\"analyzer_version\":{ANALYZER_VERSION}"),
            "\"analyzer_version\":999",
        );
        std::fs::write(&path, doctored).unwrap();
        let reloaded = AnalysisCache::load(&dir);
        assert_eq!(reloaded.scenario_len() + reloaded.program_len(), 0);
        assert!(reloaded.evictions > 0, "evictions must be counted");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_lists_fingerprint_verdict_and_name() {
        let text = render_manifest(&[
            ScenarioVerdict {
                name: "clean_one".into(),
                fingerprint: "00ff00ff00ff00ff".into(),
                clean: true,
            },
            ScenarioVerdict {
                name: "dirty_one".into(),
                fingerprint: "1122334455667788".into(),
                clean: false,
            },
        ]);
        assert!(
            text.contains("00ff00ff00ff00ff clean clean_one\n"),
            "{text}"
        );
        assert!(
            text.contains("1122334455667788 findings dirty_one\n"),
            "{text}"
        );
    }
}
