//! Descriptor-tag canonicalization support for explicit-state exploration.
//!
//! Goal objects mint fresh descriptor tags whenever they re-describe or
//! re-open, so a naive state hash never repeats along a reopen loop (e.g.
//! the openSlot/closeSlot retry cycle of §V) and exhaustive exploration
//! would diverge. Tag *identity* is the only thing the protocol ever
//! compares — generations are never ordered across records — so states that
//! differ only by a consistent renaming of generations are bisimilar.
//!
//! The model checker canonicalizes states before hashing: for every tag
//! origin it collects the generations that actually occur (in slots, queued
//! signals, and goal caches), renames them densely preserving their order,
//! and resets each [`TagSource`] counter to just past the highest renamed
//! generation so future mints remain fresh. [`Retag`] is the visitor that
//! makes every tag and tag source in a structure reachable.

use crate::descriptor::{DescTag, Descriptor, Selector, TagSource};
use crate::goal::{CloseSlot, FlowLink, Goal, HoldSlot, OpenSlot, UserAgent};
use crate::signal::Signal;
use crate::slot::Slot;

/// Visit every descriptor tag and tag source in a structure.
pub trait Retag {
    /// Call `f` on each embedded [`DescTag`].
    fn visit_tags(&mut self, f: &mut dyn FnMut(&mut DescTag));
    /// Call `f` on each embedded [`TagSource`].
    fn visit_sources(&mut self, _f: &mut dyn FnMut(&mut TagSource)) {}
}

impl Retag for DescTag {
    fn visit_tags(&mut self, f: &mut dyn FnMut(&mut DescTag)) {
        f(self);
    }
}

impl Retag for Descriptor {
    fn visit_tags(&mut self, f: &mut dyn FnMut(&mut DescTag)) {
        f(&mut self.tag);
    }
}

impl Retag for Selector {
    fn visit_tags(&mut self, f: &mut dyn FnMut(&mut DescTag)) {
        f(&mut self.answers);
    }
}

impl Retag for Signal {
    fn visit_tags(&mut self, f: &mut dyn FnMut(&mut DescTag)) {
        match self {
            Signal::Open { desc, .. } | Signal::Oack { desc } | Signal::Describe { desc } => {
                desc.visit_tags(f);
            }
            Signal::Select { sel } => sel.visit_tags(f),
            Signal::Close | Signal::CloseAck => {}
        }
    }
}

impl Retag for Slot {
    fn visit_tags(&mut self, f: &mut dyn FnMut(&mut DescTag)) {
        if let Some(d) = self.peer_desc_mut() {
            d.visit_tags(f);
        }
        if let Some(d) = self.sent_desc_mut() {
            d.visit_tags(f);
        }
        if let Some(s) = self.peer_sel_mut() {
            s.visit_tags(f);
        }
        if let Some(s) = self.sent_sel_mut() {
            s.visit_tags(f);
        }
    }
}

impl Retag for TagSource {
    fn visit_tags(&mut self, _f: &mut dyn FnMut(&mut DescTag)) {}
    fn visit_sources(&mut self, f: &mut dyn FnMut(&mut TagSource)) {
        f(self);
    }
}

impl Retag for OpenSlot {
    fn visit_tags(&mut self, _f: &mut dyn FnMut(&mut DescTag)) {}
    fn visit_sources(&mut self, f: &mut dyn FnMut(&mut TagSource)) {
        f(self.tags_mut());
    }
}

impl Retag for HoldSlot {
    fn visit_tags(&mut self, _f: &mut dyn FnMut(&mut DescTag)) {}
    fn visit_sources(&mut self, f: &mut dyn FnMut(&mut TagSource)) {
        f(self.tags_mut());
    }
}

impl Retag for CloseSlot {
    fn visit_tags(&mut self, _f: &mut dyn FnMut(&mut DescTag)) {}
}

impl Retag for FlowLink {
    fn visit_tags(&mut self, _f: &mut dyn FnMut(&mut DescTag)) {}
    fn visit_sources(&mut self, f: &mut dyn FnMut(&mut TagSource)) {
        f(self.tags_mut());
    }
}

impl Retag for UserAgent {
    fn visit_tags(&mut self, _f: &mut dyn FnMut(&mut DescTag)) {}
    fn visit_sources(&mut self, f: &mut dyn FnMut(&mut TagSource)) {
        f(self.tags_mut());
    }
}

impl Retag for Goal {
    fn visit_tags(&mut self, f: &mut dyn FnMut(&mut DescTag)) {
        match self {
            Goal::Open(g) => g.visit_tags(f),
            Goal::Close(g) => g.visit_tags(f),
            Goal::Hold(g) => g.visit_tags(f),
            Goal::User(g) => g.visit_tags(f),
            Goal::Link(g) => g.visit_tags(f),
        }
    }
    fn visit_sources(&mut self, f: &mut dyn FnMut(&mut TagSource)) {
        match self {
            Goal::Open(g) => g.visit_sources(f),
            Goal::Close(g) => g.visit_sources(f),
            Goal::Hold(g) => g.visit_sources(f),
            Goal::User(g) => g.visit_sources(f),
            Goal::Link(g) => g.visit_sources(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Codec, Medium};
    use crate::descriptor::MediaAddr;

    #[test]
    fn slot_tags_are_visitable() {
        let mut ts = TagSource::new(5);
        let mut a = Slot::new(true);
        let d = Descriptor::media(ts.next(), MediaAddr::v4(1, 1, 1, 1, 2), vec![Codec::G711]);
        a.send_open(Medium::Audio, d).unwrap();
        let mut seen = Vec::new();
        a.visit_tags(&mut |t| seen.push(*t));
        assert_eq!(seen.len(), 1);
        assert_eq!(seen[0].origin, 5);
    }

    #[test]
    fn signal_tags_are_visitable_and_mutable() {
        let mut ts = TagSource::new(5);
        let mut sig = Signal::Describe {
            desc: Descriptor::no_media(ts.next()),
        };
        sig.visit_tags(&mut |t| t.generation = 42);
        match sig {
            Signal::Describe { desc } => assert_eq!(desc.tag.generation, 42),
            _ => unreachable!(),
        }
    }

    #[test]
    fn tag_source_counter_is_adjustable() {
        let mut ts = TagSource::new(5);
        ts.next();
        ts.next();
        ts.set_generation_counter(1);
        assert_eq!(ts.next().generation, 1);
    }
}
