//! Descriptors and selectors (paper §VI-B).
//!
//! A *descriptor* is a record in which an endpoint describes itself as a
//! receiver of media: an IP address, port number, and a priority-ordered
//! list of codecs it can handle. If the endpoint does not wish to receive
//! media (`muteIn`), the only offered codec is `noMedia`.
//!
//! A *selector* is a record in which an endpoint declares its intention to
//! send to the endpoint described by a descriptor: it identifies the
//! descriptor it responds to, carries the sender's address, and names the
//! single codec the sender will use (`noMedia` if `muteOut`).
//!
//! Descriptors are *unilateral* (they describe one endpoint independently of
//! any other), which is what allows boxes to cache and re-use them — a key
//! difference from SIP's relative offer/answer (§IX-B).

use crate::codec::{Codec, Medium};
use std::fmt;
use std::net::{IpAddr, Ipv4Addr};

/// Transport address of a media endpoint: where RTP-like packets are sent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MediaAddr {
    /// IP address packets are sent to.
    pub ip: IpAddr,
    /// UDP/RTP port packets are sent to.
    pub port: u16,
}

impl MediaAddr {
    /// Address from an ip/port pair.
    pub fn new(ip: IpAddr, port: u16) -> Self {
        Self { ip, port }
    }

    /// Convenience constructor for test-lab style v4 addresses.
    pub fn v4(a: u8, b: u8, c: u8, d: u8, port: u16) -> Self {
        Self {
            ip: IpAddr::V4(Ipv4Addr::new(a, b, c, d)),
            port,
        }
    }
}

impl fmt::Display for MediaAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.ip, self.port)
    }
}

/// Unique identity of a descriptor: which source issued it and its
/// generation at that source.
///
/// Selectors name the tag of the descriptor they answer; flowlinks use tag
/// equality to decide whether a selector is fresh (it responds to the other
/// slot's *current* descriptor) or obsolete and to be discarded (§VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DescTag {
    /// Identifier of the issuing source; unique per descriptor-issuing
    /// entity (endpoint policy or masquerading goal object).
    pub origin: u64,
    /// Monotonically increasing generation at the origin. A re-issued
    /// description of the same endpoint gets a fresh generation.
    pub generation: u32,
}

impl fmt::Display for DescTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}#{}", self.origin, self.generation)
    }
}

/// Issues uniquely-tagged descriptors on behalf of one endpoint or goal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TagSource {
    origin: u64,
    next_generation: u32,
}

impl TagSource {
    /// A source minting tags with the given unique origin.
    pub fn new(origin: u64) -> Self {
        Self {
            origin,
            next_generation: 0,
        }
    }

    /// The origin stamped on every tag this source mints.
    pub fn origin(&self) -> u64 {
        self.origin
    }

    /// Current generation counter (the generation the next mint will use).
    pub fn generation_counter(&self) -> u32 {
        self.next_generation
    }

    /// Reset the generation counter; used only by state canonicalization
    /// in the model checker (`ipmedia_core::retag`).
    #[doc(hidden)]
    pub fn set_generation_counter(&mut self, next: u32) {
        self.next_generation = next;
    }

    /// Mint the next tag for this source.
    #[allow(clippy::should_implement_trait)] // a tag mint, not an Iterator
    pub fn next(&mut self) -> DescTag {
        let tag = DescTag {
            origin: self.origin,
            generation: self.next_generation,
        };
        self.next_generation += 1;
        tag
    }
}

/// A descriptor: one endpoint's unilateral self-description as a receiver.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Descriptor {
    /// Freshness tag identifying this particular description.
    pub tag: DescTag,
    /// Where to send media. `None` only for `noMedia` descriptors.
    pub addr: Option<MediaAddr>,
    /// Priority-ordered codecs the endpoint can receive; highest priority
    /// first. Exactly `[NoMedia]` when the endpoint mutes inward flow.
    pub codecs: Vec<Codec>,
}

impl Descriptor {
    /// Descriptor of an endpoint willing to receive media at `addr` using
    /// any of `codecs` (priority order, all real).
    ///
    /// # Panics
    /// Panics if `codecs` is empty or contains `NoMedia`; a mixed offer is
    /// meaningless in the protocol.
    pub fn media(tag: DescTag, addr: MediaAddr, codecs: Vec<Codec>) -> Self {
        assert!(
            !codecs.is_empty() && codecs.iter().all(|c| c.is_real()),
            "a media descriptor must offer at least one real codec and no NoMedia"
        );
        Self {
            tag,
            addr: Some(addr),
            codecs,
        }
    }

    /// Descriptor of an endpoint that does not wish to receive media
    /// (muteIn true, or an application-server slot masquerading as an
    /// endpoint, §IV-A).
    pub fn no_media(tag: DescTag) -> Self {
        Self {
            tag,
            addr: None,
            codecs: vec![Codec::NoMedia],
        }
    }

    /// True iff this descriptor offers no real codec.
    pub fn is_no_media(&self) -> bool {
        self.codecs.iter().all(|c| !c.is_real())
    }

    /// The medium all offered codecs belong to, if the offer is real and
    /// consistent.
    pub fn medium(&self) -> Option<Medium> {
        let mut m = None;
        for c in &self.codecs {
            match (m, c.medium()) {
                (_, None) => return None,
                (None, some) => m = some,
                (Some(a), Some(b)) if a == b => {}
                _ => return None,
            }
        }
        m
    }

    /// Highest-priority codec offered that satisfies `willing`, as the
    /// paper's rule for optimal codec choice: "the sender should choose the
    /// highest-priority codec that it is able and willing to send" (§VI-B).
    pub fn best_codec_for(&self, willing: &[Codec]) -> Option<Codec> {
        self.codecs
            .iter()
            .copied()
            .find(|c| c.is_real() && willing.contains(c))
    }
}

impl fmt::Display for Descriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "desc[{}", self.tag)?;
        if let Some(a) = self.addr {
            write!(f, " @{a}")?;
        }
        write!(f, " {{")?;
        for (i, c) in self.codecs.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, "}}]")
    }
}

/// A selector: a response to a descriptor declaring what the sender will do.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Selector {
    /// Tag of the descriptor this selector responds to.
    pub answers: DescTag,
    /// The sender's media address. `None` when not sending (`NoMedia`).
    pub sender: Option<MediaAddr>,
    /// The single codec the sender will use, selected from the descriptor's
    /// list; `NoMedia` if the sender mutes outward flow or the descriptor
    /// offered only `NoMedia`.
    pub codec: Codec,
}

impl Selector {
    /// Selector declaring active transmission in `codec` from `sender`.
    pub fn sending(answers: DescTag, sender: MediaAddr, codec: Codec) -> Self {
        assert!(codec.is_real(), "a sending selector needs a real codec");
        Self {
            answers,
            sender: Some(sender),
            codec,
        }
    }

    /// Selector declaring no transmission (muteOut, a masquerading server
    /// slot, or the mandatory `noMedia` answer to a `noMedia` descriptor).
    pub fn not_sending(answers: DescTag) -> Self {
        Self {
            answers,
            sender: None,
            codec: Codec::NoMedia,
        }
    }

    /// True iff this selector declares real sending intent (not `noMedia`).
    pub fn is_sending(&self) -> bool {
        self.codec.is_real()
    }

    /// Check protocol legality of this selector against the descriptor it
    /// claims to answer: the codec must come from the descriptor's list, and
    /// the only legal response to a `noMedia` descriptor is `noMedia`.
    pub fn answers_validly(&self, desc: &Descriptor) -> bool {
        if self.answers != desc.tag {
            return false;
        }
        if self.codec == Codec::NoMedia {
            return true;
        }
        !desc.is_no_media() && desc.codecs.contains(&self.codec)
    }
}

impl fmt::Display for Selector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sel[->{} {}", self.answers, self.codec)?;
        if let Some(a) = self.sender {
            write!(f, " from {a}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags() -> TagSource {
        TagSource::new(42)
    }

    #[test]
    fn tag_source_is_monotonic_and_unique() {
        let mut t = tags();
        let a = t.next();
        let b = t.next();
        assert_eq!(a.origin, 42);
        assert_eq!(b.origin, 42);
        assert!(b.generation > a.generation);
        assert_ne!(a, b);
    }

    #[test]
    fn no_media_descriptor_shape() {
        let d = Descriptor::no_media(tags().next());
        assert!(d.is_no_media());
        assert_eq!(d.addr, None);
        assert_eq!(d.codecs, vec![Codec::NoMedia]);
        assert_eq!(d.medium(), None);
    }

    #[test]
    fn media_descriptor_shape() {
        let d = Descriptor::media(
            tags().next(),
            MediaAddr::v4(10, 0, 0, 1, 4000),
            vec![Codec::G711, Codec::G726],
        );
        assert!(!d.is_no_media());
        assert_eq!(d.medium(), Some(Medium::Audio));
    }

    #[test]
    #[should_panic = "at least one real codec"]
    fn media_descriptor_rejects_no_media_codec() {
        Descriptor::media(
            tags().next(),
            MediaAddr::v4(10, 0, 0, 1, 4000),
            vec![Codec::NoMedia],
        );
    }

    #[test]
    fn best_codec_respects_priority_order() {
        // Descriptor prefers G.711; a sender able to send both picks G.711,
        // a sender only able to send G.726 picks that.
        let d = Descriptor::media(
            tags().next(),
            MediaAddr::v4(10, 0, 0, 1, 4000),
            vec![Codec::G711, Codec::G726],
        );
        assert_eq!(
            d.best_codec_for(&[Codec::G726, Codec::G711]),
            Some(Codec::G711)
        );
        assert_eq!(d.best_codec_for(&[Codec::G726]), Some(Codec::G726));
        assert_eq!(d.best_codec_for(&[Codec::G729]), None);
    }

    #[test]
    fn only_legal_response_to_no_media_is_no_media() {
        let mut t = tags();
        let d = Descriptor::no_media(t.next());
        let ok = Selector::not_sending(d.tag);
        assert!(ok.answers_validly(&d));
        let bad = Selector::sending(d.tag, MediaAddr::v4(1, 2, 3, 4, 5), Codec::G711);
        assert!(!bad.answers_validly(&d));
    }

    #[test]
    fn selector_must_pick_from_offered_list() {
        let d = Descriptor::media(
            tags().next(),
            MediaAddr::v4(10, 0, 0, 1, 4000),
            vec![Codec::G726],
        );
        let wrong_codec = Selector::sending(d.tag, MediaAddr::v4(1, 1, 1, 1, 9), Codec::G711);
        assert!(!wrong_codec.answers_validly(&d));
        let right = Selector::sending(d.tag, MediaAddr::v4(1, 1, 1, 1, 9), Codec::G726);
        assert!(right.answers_validly(&d));
    }

    #[test]
    fn selector_must_answer_matching_tag() {
        let mut t = tags();
        let d1 = Descriptor::no_media(t.next());
        let d2 = Descriptor::no_media(t.next());
        let s = Selector::not_sending(d1.tag);
        assert!(s.answers_validly(&d1));
        assert!(!s.answers_validly(&d2));
    }

    #[test]
    fn mixed_medium_descriptor_has_no_medium() {
        let d = Descriptor::media(
            tags().next(),
            MediaAddr::v4(10, 0, 0, 1, 4000),
            vec![Codec::G711, Codec::H261],
        );
        assert_eq!(d.medium(), None);
    }
}
