//! State-oriented box programs (paper §IV-A, §IV-B).
//!
//! Media services are event-driven and "best programmed using finite-state
//! machines in which the transitions are triggered by events such as
//! received signals and timeouts". Application logic implements
//! [`AppLogic`]: it reacts to meta-signals, timers, and slot events by
//! re-annotating slots with goals and issuing channel-level commands. All
//! media signaling is concealed inside the goal objects; the program sees
//! mostly meta-events plus the `isClosed`/`isOpening`/`isOpened`/`isFlowing`
//! predicates (exposed on [`crate::slot::Slot`]).
//!
//! A [`ProgramBox`] pairs a [`MediaBox`] with its logic; the surrounding
//! environment (the discrete-event simulator or the tokio runtime) feeds it
//! [`BoxInput`]s and executes the [`BoxCmd`]s it returns.

pub mod model;

pub use model::{
    GoalAnnotation, ModelEffect, ModelTrigger, ProgramModel, ScenarioModel, SlotDecl, StateModel,
    TransitionModel,
};

use crate::boxes::{BoxNote, GoalSpec, MediaBox};
use crate::goal::{Outgoing, UserCmd};
use crate::ids::{BoxId, ChannelId, SlotId};
use crate::signal::MetaSignal;
use ipmedia_obs::{NoopObserver, Observer};
use std::collections::HashMap;

/// Identity of an application timer within its box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TimerId(pub u32);

/// Per-timer generation bookkeeping for environments that execute
/// [`BoxCmd::SetTimer`] / [`BoxCmd::CancelTimer`].
///
/// [`BoxCmd::SetTimer`] *restarts* a timer, and a cancelled timer must not
/// fire — but an environment that has already scheduled a wakeup (a
/// simulator event, a heap entry) usually cannot unschedule it cheaply.
/// The standard fix is generation stamping: every arm or cancel bumps the
/// timer's generation, each scheduled fire carries the generation current
/// when it was armed, and a fire whose generation is no longer current is
/// stale and must be dropped. Both the discrete-event simulator and the
/// tokio actor use this type so the two substrates cannot drift.
#[derive(Debug, Clone, Default)]
pub struct TimerGenerations {
    gens: HashMap<TimerId, u64>,
}

impl TimerGenerations {
    /// New bookkeeping with no timers armed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm (or restart) a timer: returns the generation to stamp on the
    /// scheduled fire. Any previously scheduled fire becomes stale.
    pub fn arm(&mut self, id: TimerId) -> u64 {
        let g = self.gens.entry(id).or_insert(0);
        *g += 1;
        *g
    }

    /// Cancel a timer: any scheduled fire becomes stale. Cancelling a timer
    /// that was never armed is a no-op.
    pub fn cancel(&mut self, id: TimerId) {
        if let Some(g) = self.gens.get_mut(&id) {
            *g += 1;
        }
    }

    /// True iff a fire stamped with `gen` is still current and must be
    /// delivered to the application.
    pub fn is_current(&self, id: TimerId, gen: u64) -> bool {
        self.gens.get(&id) == Some(&gen)
    }
}

/// Inputs delivered to a box by its environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoxInput {
    /// The box has been started; perform initial actions.
    Start,
    /// A signaling channel is up. For channels this box requested via
    /// [`BoxCmd::OpenChannel`], `req` echoes the request tag; for channels
    /// initiated by a peer, `req` is `None`. `slots` lists the slot ids
    /// registered for the channel's tunnels, in tunnel order.
    ChannelUp {
        /// The channel that came up.
        channel: ChannelId,
        /// Slot ids registered for the channel's tunnels, in tunnel order.
        slots: Vec<SlotId>,
        /// Echo of the [`BoxCmd::OpenChannel`] request tag, if we initiated.
        req: Option<u32>,
    },
    /// A signaling channel was destroyed (all its tunnels and slots die).
    ChannelDown {
        /// The destroyed channel.
        channel: ChannelId,
    },
    /// A channel-level meta-signal arrived.
    Meta {
        /// The channel the meta-signal arrived on.
        channel: ChannelId,
        /// The meta-signal itself.
        meta: MetaSignal,
    },
    /// A tunnel signal arrived for `slot`.
    Tunnel {
        /// The slot at this end of the tunnel.
        slot: SlotId,
        /// The protocol signal.
        signal: crate::signal::Signal,
    },
    /// An application timer fired.
    Timer(TimerId),
    /// Synthesized by [`ProgramBox`]: a slot event already handled by the
    /// goal layer, surfaced so programs can guard on it (the `isFlowing(1a)`
    /// style guards of §IV-A are predicates over slot state at this point).
    SlotNote {
        /// The slot the event happened on.
        slot: SlotId,
        /// The surfaced slot event.
        event: crate::slot::SlotEvent,
    },
    /// Synthesized by [`ProgramBox`]: a Fig. 5 `?` event surfaced by a
    /// user-agent goal.
    UserNote {
        /// The user-agent slot the note concerns.
        slot: SlotId,
        /// The surfaced user note.
        note: crate::goal::UserNote,
    },
}

/// Commands a box issues to its environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoxCmd {
    /// Transmit a tunnel signal (already applied to the local slot).
    Signal(Outgoing),
    /// Send a channel-level meta-signal.
    Meta {
        /// The channel to send on.
        channel: ChannelId,
        /// The meta-signal to send.
        meta: MetaSignal,
    },
    /// Create a signaling channel toward the named box with `tunnels`
    /// tunnels; the environment answers with [`BoxInput::ChannelUp`]
    /// echoing `req`, and reports far-end availability as a meta-signal.
    OpenChannel {
        /// Name of the far box.
        to: String,
        /// Number of tunnels to create.
        tunnels: u16,
        /// Request tag echoed back in [`BoxInput::ChannelUp`].
        req: u32,
    },
    /// Destroy a signaling channel (meta-action; destroys its tunnels and
    /// slots at both ends).
    CloseChannel(ChannelId),
    /// Start (or restart) an application timer after `after_ms` ms.
    SetTimer {
        /// The timer to arm.
        id: TimerId,
        /// Delay until it fires, in milliseconds.
        after_ms: u64,
    },
    /// Cancel an application timer; a cancelled timer must not fire.
    CancelTimer(TimerId),
    /// This box's program has terminated.
    Terminate,
}

/// Application logic of a box: the finite-state program of §IV.
pub trait AppLogic: Send {
    /// React to an input. Goal re-annotations and user commands go through
    /// `ctx` (which applies them to the media box immediately); channel and
    /// timer commands are queued on `ctx` for the environment.
    fn handle(&mut self, input: &BoxInput, ctx: &mut Ctx<'_>);
}

/// Mutable view of the box handed to application logic.
///
/// Carries the environment's observer as a dyn reference ([`AppLogic`]
/// must stay object-safe, so `Ctx` cannot be generic over it); goal
/// re-annotations and user commands issued through the ctx are observed.
pub struct Ctx<'a> {
    media: &'a mut MediaBox,
    obs: Option<&'a mut dyn Observer>,
    cmds: Vec<BoxCmd>,
}

impl<'a> Ctx<'a> {
    /// Ctx over a media box, without observability.
    pub fn new(media: &'a mut MediaBox) -> Self {
        Self {
            media,
            obs: None,
            cmds: Vec::new(),
        }
    }

    /// Ctx over a media box, reporting goal/user activity to `obs`.
    pub fn with_obs(media: &'a mut MediaBox, obs: &'a mut dyn Observer) -> Self {
        Self {
            media,
            obs: Some(obs),
            cmds: Vec::new(),
        }
    }

    /// Read access to slots for guard predicates.
    pub fn media(&self) -> &MediaBox {
        self.media
    }

    /// Identity of the box this ctx controls.
    pub fn box_id(&self) -> BoxId {
        self.media.id()
    }

    /// Annotate slots with a goal (immediately attaches the goal object and
    /// queues the signals it emits).
    pub fn set_goal(&mut self, spec: GoalSpec) {
        let out = match self.obs.as_deref_mut() {
            Some(obs) => self.media.set_goal_obs(spec, obs),
            None => self.media.set_goal(spec),
        };
        self.cmds.extend(out.into_iter().map(BoxCmd::Signal));
    }

    /// Issue a user command on a user-agent slot.
    pub fn user(&mut self, slot: SlotId, cmd: UserCmd) {
        let result = match self.obs.as_deref_mut() {
            Some(obs) => self.media.user_obs(slot, cmd, obs),
            None => self.media.user(slot, cmd),
        };
        match result {
            Ok(out) => self.cmds.extend(out.into_iter().map(BoxCmd::Signal)),
            Err(e) => panic!("user command failed: {e}"),
        }
    }

    /// Queue a channel-level meta-signal ([`BoxCmd::Meta`]).
    pub fn send_meta(&mut self, channel: ChannelId, meta: MetaSignal) {
        self.cmds.push(BoxCmd::Meta { channel, meta });
    }

    /// Queue a channel-open request ([`BoxCmd::OpenChannel`]).
    pub fn open_channel(&mut self, to: impl Into<String>, tunnels: u16, req: u32) {
        self.cmds.push(BoxCmd::OpenChannel {
            to: to.into(),
            tunnels,
            req,
        });
    }

    /// Queue destruction of a signaling channel ([`BoxCmd::CloseChannel`]).
    pub fn close_channel(&mut self, channel: ChannelId) {
        self.cmds.push(BoxCmd::CloseChannel(channel));
    }

    /// Queue arming (or restarting) of an application timer.
    pub fn set_timer(&mut self, id: TimerId, after_ms: u64) {
        self.cmds.push(BoxCmd::SetTimer { id, after_ms });
    }

    /// Queue cancellation of an application timer.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.cmds.push(BoxCmd::CancelTimer(id));
    }

    /// Declare the program terminated ([`BoxCmd::Terminate`]).
    pub fn terminate(&mut self) {
        self.cmds.push(BoxCmd::Terminate);
    }

    fn finish(self) -> Vec<BoxCmd> {
        self.cmds
    }
}

/// A media box driven by application logic.
pub struct ProgramBox {
    media: MediaBox,
    logic: Box<dyn AppLogic>,
}

impl ProgramBox {
    /// A fresh media box with the given identity, driven by `logic`.
    pub fn new(id: BoxId, logic: Box<dyn AppLogic>) -> Self {
        Self {
            media: MediaBox::new(id),
            logic,
        }
    }

    /// Read access to the underlying media box.
    pub fn media(&self) -> &MediaBox {
        &self.media
    }

    /// Mutable access to the underlying media box (slot registration).
    pub fn media_mut(&mut self) -> &mut MediaBox {
        &mut self.media
    }

    /// Feed one input through the media box (for tunnel signals) and then
    /// the application logic; collect the resulting commands.
    pub fn handle(&mut self, input: BoxInput) -> Vec<BoxCmd> {
        self.handle_obs(input, &mut NoopObserver)
    }

    /// [`ProgramBox::handle`] with observability: the stimulus itself, the
    /// media-layer processing, and everything the logic does through its
    /// [`Ctx`] are reported to `obs`. (The caller reports the *sending* of
    /// the returned [`BoxCmd::Signal`]s once it actually transmits them.)
    pub fn handle_obs(&mut self, input: BoxInput, obs: &mut dyn Observer) -> Vec<BoxCmd> {
        obs.stimulus(self.media.id().0, input.kind());
        let mut cmds = Vec::new();
        let mut notes: Vec<BoxNote> = Vec::new();
        match &input {
            BoxInput::Tunnel { slot, signal } => {
                let (out, ns) = self.media.on_signal_obs(*slot, signal.clone(), obs);
                cmds.extend(out.into_iter().map(BoxCmd::Signal));
                notes = ns;
            }
            BoxInput::ChannelUp { slots, .. } => {
                // Slots must already have been registered by the
                // environment via `register_slot`; nothing to do here.
                debug_assert!(slots.iter().all(|s| self.media.slot(*s).is_some()));
            }
            _ => {}
        }
        // The logic sees the raw input first, then each surfaced note.
        let mut ctx = Ctx::with_obs(&mut self.media, obs);
        self.logic.handle(&input, &mut ctx);
        cmds.extend(ctx.finish());
        for note in &notes {
            let input = BoxInput::from_note(note);
            let mut ctx = Ctx::with_obs(&mut self.media, obs);
            self.logic.handle(&input, &mut ctx);
            cmds.extend(ctx.finish());
        }
        cmds
    }
}

impl BoxInput {
    /// Stable class name of this input, for observers and trace records.
    pub fn kind(&self) -> &'static str {
        match self {
            BoxInput::Start => "start",
            BoxInput::ChannelUp { .. } => "channel_up",
            BoxInput::ChannelDown { .. } => "channel_down",
            BoxInput::Meta { .. } => "meta",
            BoxInput::Tunnel { .. } => "tunnel",
            BoxInput::Timer(_) => "timer",
            BoxInput::SlotNote { .. } => "slot_note",
            BoxInput::UserNote { .. } => "user_note",
        }
    }

    /// Notes surfaced by the media layer are re-delivered to the logic as
    /// inputs so programs can guard on slot events (`isFlowing(1a)` etc.).
    fn from_note(note: &BoxNote) -> BoxInput {
        match note {
            BoxNote::Slot { slot, event } => BoxInput::SlotNote {
                slot: *slot,
                event: event.clone(),
            },
            BoxNote::User { slot, note } => BoxInput::UserNote {
                slot: *slot,
                note: note.clone(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Medium;
    use crate::goal::Policy;
    use crate::signal::Signal;
    use crate::slot::SlotEvent;

    /// A trivial program: on start, open an audio channel on slot 0; when
    /// the slot starts flowing, set a timer; when the timer fires, close.
    struct Trivial;

    impl AppLogic for Trivial {
        fn handle(&mut self, input: &BoxInput, ctx: &mut Ctx<'_>) {
            match input {
                BoxInput::Start => ctx.set_goal(GoalSpec::Open {
                    slot: SlotId(0),
                    medium: Medium::Audio,
                    policy: Policy::Server,
                }),
                BoxInput::SlotNote {
                    slot,
                    event: SlotEvent::Oacked,
                } => {
                    assert!(ctx.media().slot(*slot).unwrap().is_flowing());
                    ctx.set_timer(TimerId(1), 5_000);
                }
                BoxInput::Timer(TimerId(1)) => {
                    ctx.set_goal(GoalSpec::Close { slot: SlotId(0) });
                    ctx.terminate();
                }
                _ => {}
            }
        }
    }

    #[test]
    fn timer_generations_invalidate_stale_fires() {
        let mut tg = TimerGenerations::new();
        let g1 = tg.arm(TimerId(1));
        assert!(tg.is_current(TimerId(1), g1));

        // Restarting invalidates the first scheduled fire.
        let g2 = tg.arm(TimerId(1));
        assert!(!tg.is_current(TimerId(1), g1));
        assert!(tg.is_current(TimerId(1), g2));

        // Cancelling invalidates without arming a new fire.
        tg.cancel(TimerId(1));
        assert!(!tg.is_current(TimerId(1), g2));

        // Other timers are independent; unknown timers are never current.
        let g = tg.arm(TimerId(2));
        assert!(tg.is_current(TimerId(2), g));
        assert!(!tg.is_current(TimerId(3), 1));
        tg.cancel(TimerId(3)); // no-op
        assert!(!tg.is_current(TimerId(3), 1));
    }

    #[test]
    fn program_box_drives_goals_from_inputs() {
        let mut pb = ProgramBox::new(BoxId(9), Box::new(Trivial));
        pb.media_mut().add_slot(SlotId(0), true);

        let cmds = pb.handle(BoxInput::Start);
        assert_eq!(cmds.len(), 1);
        assert!(matches!(
            &cmds[0],
            BoxCmd::Signal(out) if matches!(out.signal, Signal::Open { .. })
        ));

        // Peer oacks: the program observes the slot event and arms a timer.
        let mut peer_tags = crate::descriptor::TagSource::new(3);
        let cmds = pb.handle(BoxInput::Tunnel {
            slot: SlotId(0),
            signal: Signal::Oack {
                desc: crate::descriptor::Descriptor::no_media(peer_tags.next()),
            },
        });
        assert!(cmds.iter().any(|c| matches!(
            c,
            BoxCmd::Signal(out) if matches!(out.signal, Signal::Select { .. })
        )));
        assert!(cmds.contains(&BoxCmd::SetTimer {
            id: TimerId(1),
            after_ms: 5_000
        }));

        // Timer fires: close + terminate.
        let cmds = pb.handle(BoxInput::Timer(TimerId(1)));
        assert!(cmds.iter().any(|c| matches!(
            c,
            BoxCmd::Signal(out) if out.signal == Signal::Close
        )));
        assert!(cmds.contains(&BoxCmd::Terminate));
    }
}
