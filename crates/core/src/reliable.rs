//! Retransmission and recovery for the slot protocol (paper §VI).
//!
//! The protocol is deliberately idempotent and unilateral so that signals
//! can be lost, duplicated, or reordered without corrupting slot state:
//! stale signals are tolerated and dropped, duplicate opens are resolved by
//! channel-initiator priority, and selector freshness is decided purely by
//! descriptor-tag identity. This module supplies the missing half of the
//! robustness story: *recovery*. Every signal an endpoint still awaits an
//! answer for is re-emitted from the slot's cached records on a timer with
//! capped exponential backoff, and duplicate suppression at the receiver is
//! exactly the tolerance §VI already proves.
//!
//! The await structure is derived from slot state rather than stored:
//!
//! * `Opening`  — our `open` may have been lost; awaiting `oack`/`close`.
//! * `Closing`  — our `close` may have been lost; awaiting `closeack`
//!   (a duplicate `close` is always re-acknowledged, even from `Closed`).
//! * `Flowing` with the current sent descriptor unanswered — the descriptor
//!   (or the peer's answering selector) may have been lost; §VI-B obliges
//!   the peer to answer every descriptor "if only to show the descriptor
//!   was received", so an unanswered descriptor is re-emitted.
//!
//! A slot with no pending await has *converged*: the `oack`/`closeack`
//! handshakes are quiescent and every descriptor is answered. This is the
//! explicit convergence detection used by the simulator's fault tests and
//! the bench loss-rate experiment.
//!
//! [`Reliability`] is sans-IO like the rest of the core: environments feed
//! it activity notifications and timer fires, and it returns [`BoxCmd`]s /
//! signals to (re)transmit. The model checker uses the pure helpers
//! ([`pending_await`], [`resend_signals`], [`reack_signals`]) directly as
//! its bounded-retransmission actions.

use crate::boxes::MediaBox;
use crate::descriptor::DescTag;
use crate::ids::SlotId;
use crate::program::{BoxCmd, TimerId};
use crate::signal::Signal;
use crate::slot::{Slot, SlotState};
use std::collections::BTreeMap;

/// Timer-id namespace reserved for retransmission timers, chosen far above
/// any application timer id in the repo. One timer per slot.
pub const RETRANSMIT_TIMER_BASE: u32 = 0x4000_0000;

/// The retransmission timer of a slot.
pub fn retransmit_timer(slot: SlotId) -> TimerId {
    TimerId(RETRANSMIT_TIMER_BASE + u32::from(slot.0))
}

/// Inverse of [`retransmit_timer`]: `Some(slot)` iff `id` is in the
/// retransmission namespace.
pub fn timer_slot(id: TimerId) -> Option<SlotId> {
    let off = id.0.checked_sub(RETRANSMIT_TIMER_BASE)?;
    u16::try_from(off).ok().map(SlotId)
}

/// What a slot still awaits from its peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Await {
    /// `open` sent; awaiting `oack` (or a rejecting `close`).
    Oack,
    /// `close` sent; awaiting `closeack`.
    CloseAck,
    /// The current sent descriptor (this tag) has no answering selector yet.
    Selector(DescTag),
}

/// The slot's pending await, derived from its state and cached records;
/// `None` means the slot has converged.
pub fn pending_await(slot: &Slot) -> Option<Await> {
    match slot.state() {
        SlotState::Opening => Some(Await::Oack),
        SlotState::Closing => Some(Await::CloseAck),
        SlotState::Flowing => {
            let tag = slot.sent_desc()?.tag;
            let answered = slot.peer_sel().is_some_and(|s| s.answers == tag);
            (!answered).then_some(Await::Selector(tag))
        }
        SlotState::Closed | SlotState::Opened => None,
    }
}

/// True iff every slot of the box has converged (no pending awaits).
pub fn converged(media: &MediaBox) -> bool {
    media
        .slot_ids()
        .filter_map(|id| media.slot(id))
        .all(|s| pending_await(s).is_none())
}

/// Signals to re-emit for a slot's pending await. These are pure
/// re-emissions of the slot's cached records — no new descriptor tags are
/// minted — so the receiver either needs them (and applies them exactly as
/// it would have applied the originals) or already has them (and drops them
/// as stale, §VI).
///
/// The `Flowing` bundle covers both ways the peer can be behind: the
/// re-`oack` completes a peer still stuck in `Opening` (our original oack
/// was lost) and is absorbed as stale otherwise; the re-`describe`
/// re-delivers the current descriptor to a flowing peer, forcing a fresh
/// answering selector; the cached selector re-answers the peer's current
/// descriptor in case our original selector was the casualty.
pub fn resend_signals(slot: &Slot) -> Vec<Signal> {
    match slot.state() {
        SlotState::Opening => match (slot.medium(), slot.sent_desc()) {
            (Some(medium), Some(desc)) => vec![Signal::Open {
                medium,
                desc: desc.clone(),
            }],
            _ => vec![],
        },
        SlotState::Closing => vec![Signal::Close],
        SlotState::Flowing => {
            let mut out = Vec::new();
            if let Some(desc) = slot.sent_desc() {
                out.push(Signal::Oack { desc: desc.clone() });
                out.push(Signal::Describe { desc: desc.clone() });
            }
            if let Some(sel) = slot.sent_sel() {
                out.push(Signal::Select { sel: sel.clone() });
            }
            out
        }
        SlotState::Closed | SlotState::Opened => vec![],
    }
}

/// Deterministic re-acknowledgement of a duplicate signal.
///
/// A flowing acceptor that receives a duplicate `open` learns that its
/// original `oack`/`select` may have been lost (the opener would not
/// retransmit otherwise); the slot itself ignores the duplicate, so the
/// reliability layer re-emits the cached acknowledgement. Without this the
/// opener's retransmissions are swallowed and recovery would depend on two
/// independent timers instead of one round trip.
///
/// Likewise a duplicate `describe` (same tag as the descriptor already
/// held) means the describer never received our answering selector: the
/// cached selector is re-emitted. This path is what recovers a *lost
/// select*, because the selector's sender has no pending await of its own
/// once its descriptor was answered — only the describer retransmits.
///
/// Call with the slot state *before* the incoming signal is applied.
pub fn reack_signals(slot: &Slot, incoming: &Signal) -> Vec<Signal> {
    if slot.state() != SlotState::Flowing {
        return vec![];
    }
    match incoming {
        Signal::Open { .. } => {
            let mut out = Vec::new();
            if let Some(desc) = slot.sent_desc() {
                out.push(Signal::Oack { desc: desc.clone() });
            }
            if let Some(sel) = slot.sent_sel() {
                out.push(Signal::Select { sel: sel.clone() });
            }
            out
        }
        Signal::Describe { desc } => {
            let duplicate = slot.peer_desc().is_some_and(|d| d.tag == desc.tag);
            match slot.sent_sel() {
                Some(sel) if duplicate && sel.answers == desc.tag => {
                    vec![Signal::Select { sel: sel.clone() }]
                }
                _ => vec![],
            }
        }
        _ => vec![],
    }
}

/// Retransmission policy: capped exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliableConfig {
    /// First retransmission fires this long after the await appears. Must
    /// comfortably exceed one fault-free round trip, or healthy runs pay
    /// for spurious (if harmless) duplicates.
    pub base_ms: u64,
    /// Backoff cap: the interval doubles per attempt up to this bound.
    pub max_ms: u64,
    /// Give up and park the slot after this many retransmissions.
    pub max_retries: u32,
}

impl Default for ReliableConfig {
    fn default() -> Self {
        Self {
            base_ms: 200,
            max_ms: 3_200,
            max_retries: 12,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Pending {
    what: Await,
    attempts: u32,
    since_ms: u64,
}

/// A pending await that resolved after at least one retransmission —
/// i.e. an actual recovery from a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// The slot that recovered.
    pub slot: SlotId,
    /// Retransmission attempts made before the await resolved.
    pub attempts: u32,
    /// Time from first send to resolution, in milliseconds.
    pub elapsed_ms: u64,
}

/// What to do about a retransmission timer fire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TimerAction {
    /// Re-emit `signals` on the slot's tunnel and re-arm after `rearm_ms`.
    Resend {
        /// The slot whose await is still pending.
        slot: SlotId,
        /// The signals to re-emit, in order.
        signals: Vec<Signal>,
        /// Delay until the next retransmission timer, in milliseconds.
        rearm_ms: u64,
    },
    /// Retries exhausted: the slot parks in a recovering state (it keeps
    /// its protocol state; a later peer signal or goal change un-parks it).
    Parked {
        /// The slot that parked.
        slot: SlotId,
    },
    /// The await already resolved; nothing to do.
    Stale,
}

/// Per-box retransmission bookkeeping: one timer per slot with a pending
/// await, capped exponential backoff, and park-on-exhaustion.
#[derive(Debug, Default)]
pub struct Reliability {
    cfg: ReliableConfig,
    pending: BTreeMap<SlotId, Pending>,
    parked: BTreeMap<SlotId, Await>,
}

impl Reliability {
    /// Bookkeeping with the given retransmission configuration.
    pub fn new(cfg: ReliableConfig) -> Self {
        Self {
            cfg,
            pending: BTreeMap::new(),
            parked: BTreeMap::new(),
        }
    }

    /// The retransmission configuration in force.
    pub fn config(&self) -> &ReliableConfig {
        &self.cfg
    }

    /// No retransmission is outstanding (every tracked await resolved).
    pub fn is_quiescent(&self) -> bool {
        self.pending.is_empty()
    }

    /// Slots that exhausted their retries and parked.
    pub fn parked_slots(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.parked.keys().copied()
    }

    /// Reconcile retransmission state with the box's slots after any
    /// activity (a delivered input, a goal change, a user command).
    /// Returns timer commands to execute plus any completed recoveries.
    pub fn sync(&mut self, media: &MediaBox, now_ms: u64) -> (Vec<BoxCmd>, Vec<Recovery>) {
        let live: BTreeMap<SlotId, Await> = media
            .slot_ids()
            .filter_map(|id| {
                media
                    .slot(id)
                    .and_then(pending_await)
                    .map(|what| (id, what))
            })
            .collect();

        let mut cmds = Vec::new();
        let mut recovered = Vec::new();

        // Resolved or changed awaits: stop the timer, report recovery.
        let stale: Vec<SlotId> = self
            .pending
            .iter()
            .filter(|(id, p)| live.get(id) != Some(&p.what))
            .map(|(id, _)| *id)
            .collect();
        for id in stale {
            let p = self.pending.remove(&id).expect("tracked above");
            cmds.push(BoxCmd::CancelTimer(retransmit_timer(id)));
            if p.attempts > 0 {
                recovered.push(Recovery {
                    slot: id,
                    attempts: p.attempts,
                    elapsed_ms: now_ms.saturating_sub(p.since_ms),
                });
            }
        }

        // New awaits: start the timer at the base interval. A parked slot
        // stays parked until its await changes or resolves.
        for (id, what) in &live {
            if self.parked.get(id) == Some(what) {
                continue;
            }
            self.parked.remove(id);
            if !self.pending.contains_key(id) {
                self.pending.insert(
                    *id,
                    Pending {
                        what: *what,
                        attempts: 0,
                        since_ms: now_ms,
                    },
                );
                cmds.push(BoxCmd::SetTimer {
                    id: retransmit_timer(*id),
                    after_ms: self.cfg.base_ms,
                });
            }
        }
        // Parked entries whose await vanished entirely are forgiven.
        self.parked.retain(|id, _| live.contains_key(id));

        (cmds, recovered)
    }

    /// Handle a timer fire. Returns `None` when `id` is not a
    /// retransmission timer (the caller forwards it to application logic).
    pub fn on_timer(&mut self, media: &MediaBox, id: TimerId) -> Option<TimerAction> {
        let slot_id = timer_slot(id)?;
        let Some(slot) = media.slot(slot_id) else {
            self.pending.remove(&slot_id);
            return Some(TimerAction::Stale);
        };
        let live = pending_await(slot);
        let Some(p) = self.pending.get_mut(&slot_id) else {
            return Some(TimerAction::Stale);
        };
        if live != Some(p.what) {
            // The await resolved but the fire raced its cancellation.
            return Some(TimerAction::Stale);
        }
        if p.attempts >= self.cfg.max_retries {
            let what = p.what;
            self.pending.remove(&slot_id);
            self.parked.insert(slot_id, what);
            return Some(TimerAction::Parked { slot: slot_id });
        }
        p.attempts += 1;
        let factor = 1u64 << p.attempts.min(32);
        let rearm_ms = self
            .cfg
            .base_ms
            .saturating_mul(factor)
            .min(self.cfg.max_ms)
            .max(self.cfg.base_ms);
        Some(TimerAction::Resend {
            slot: slot_id,
            signals: resend_signals(slot),
            rearm_ms,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boxes::GoalSpec;
    use crate::codec::{Codec, Medium};
    use crate::descriptor::{Descriptor, MediaAddr, Selector, TagSource};
    use crate::goal::Policy;
    use crate::ids::BoxId;

    fn desc(ts: &mut TagSource) -> Descriptor {
        Descriptor::media(
            ts.next(),
            MediaAddr::v4(10, 0, 0, 1, 4000),
            vec![Codec::G711],
        )
    }

    #[test]
    fn timer_namespace_round_trips() {
        assert_eq!(timer_slot(retransmit_timer(SlotId(7))), Some(SlotId(7)));
        assert_eq!(timer_slot(TimerId(1)), None);
        assert_eq!(timer_slot(TimerId(RETRANSMIT_TIMER_BASE + 100_000)), None);
    }

    #[test]
    fn await_tracks_protocol_progress() {
        let mut a = Slot::new(true);
        let mut b = Slot::new(false);
        let mut ta = TagSource::new(1);
        let mut tb = TagSource::new(2);
        assert_eq!(pending_await(&a), None);

        let d1 = desc(&mut ta);
        let open = a.send_open(Medium::Audio, d1.clone()).unwrap();
        assert_eq!(pending_await(&a), Some(Await::Oack));

        b.on_signal(open);
        assert_eq!(pending_await(&b), None, "opened awaits a local decision");

        let d2 = desc(&mut tb);
        let [oack, select] = b.accept(d2.clone(), Selector::not_sending(d1.tag)).unwrap();
        // B's descriptor is not answered yet.
        assert_eq!(pending_await(&b), Some(Await::Selector(d2.tag)));

        a.on_signal(oack);
        // The accept-select is still in flight: A's open descriptor is not
        // answered yet.
        assert_eq!(pending_await(&a), Some(Await::Selector(d1.tag)));
        let (ev, _) = a.on_signal(select);
        assert!(matches!(
            ev,
            crate::slot::SlotEvent::Selected { fresh: true }
        ));
        assert_eq!(pending_await(&a), None);

        // A answers B's descriptor; B converges when it arrives.
        let ans = a
            .send_select(Selector::sending(
                d2.tag,
                MediaAddr::v4(10, 0, 0, 1, 4000),
                Codec::G711,
            ))
            .unwrap();
        b.on_signal(ans);
        assert_eq!(pending_await(&b), None);

        // Close handshake.
        let close = a.send_close().unwrap();
        assert_eq!(pending_await(&a), Some(Await::CloseAck));
        let (_, auto) = b.on_signal(close);
        a.on_signal(auto.into_iter().next().unwrap());
        assert_eq!(pending_await(&a), None);
    }

    #[test]
    fn resend_reemits_cached_records_without_fresh_tags() {
        let mut a = Slot::new(true);
        let mut ta = TagSource::new(1);
        let d1 = desc(&mut ta);
        let open = a.send_open(Medium::Audio, d1.clone()).unwrap();
        let re = resend_signals(&a);
        assert_eq!(re, vec![open], "opening re-sends the identical open");

        // An acceptor re-sends oack + describe + select from cache.
        let mut b = Slot::new(false);
        b.on_signal(Signal::Open {
            medium: Medium::Audio,
            desc: d1.clone(),
        });
        let mut tb = TagSource::new(2);
        let d2 = desc(&mut tb);
        let sel = Selector::not_sending(d1.tag);
        b.accept(d2.clone(), sel.clone()).unwrap();
        let re = resend_signals(&b);
        assert_eq!(
            re,
            vec![
                Signal::Oack { desc: d2.clone() },
                Signal::Describe { desc: d2 },
                Signal::Select { sel },
            ]
        );
    }

    #[test]
    fn flowing_refresh_bundle_completes_a_stuck_opener() {
        // Lost oack: opener stuck Opening, acceptor flowing. Delivering the
        // acceptor's refresh bundle converges the opener.
        let mut a = Slot::new(true);
        let mut b = Slot::new(false);
        let mut ta = TagSource::new(1);
        let mut tb = TagSource::new(2);
        let d1 = desc(&mut ta);
        let open = a.send_open(Medium::Audio, d1.clone()).unwrap();
        b.on_signal(open);
        let d2 = desc(&mut tb);
        let [_lost_oack, _lost_select] =
            b.accept(d2.clone(), Selector::not_sending(d1.tag)).unwrap();

        assert_eq!(a.state(), SlotState::Opening);
        for sig in resend_signals(&b) {
            a.on_signal(sig);
        }
        assert_eq!(a.state(), SlotState::Flowing);
        assert_eq!(a.peer_desc().unwrap().tag, d2.tag);
        assert!(a.peer_sel().is_some());
    }

    #[test]
    fn duplicate_open_is_reacked_from_cache() {
        let mut b = Slot::new(false);
        let mut ta = TagSource::new(1);
        let mut tb = TagSource::new(2);
        let d1 = desc(&mut ta);
        let open = Signal::Open {
            medium: Medium::Audio,
            desc: d1.clone(),
        };
        b.on_signal(open.clone());
        let d2 = desc(&mut tb);
        b.accept(d2.clone(), Selector::not_sending(d1.tag)).unwrap();

        // The duplicate itself is ignored by the slot; the reliability layer
        // re-acknowledges from cache.
        let re = reack_signals(&b, &open);
        assert_eq!(
            re,
            vec![
                Signal::Oack { desc: d2 },
                Signal::Select {
                    sel: Selector::not_sending(d1.tag)
                },
            ]
        );
        // No re-ack for anything but duplicates on a flowing slot.
        assert!(reack_signals(&b, &Signal::Close).is_empty());
        let idle = Slot::new(true);
        assert!(reack_signals(&idle, &open).is_empty());
    }

    #[test]
    fn duplicate_describe_is_reanswered_from_cache() {
        // A and B flowing; B answered A's descriptor, but the select was
        // lost. A retransmits the describe; B's reliability layer re-emits
        // the cached selector (B itself has no pending await to drive it).
        let mut a = Slot::new(true);
        let mut b = Slot::new(false);
        let mut ta = TagSource::new(1);
        let mut tb = TagSource::new(2);
        let d1 = desc(&mut ta);
        let open = a.send_open(Medium::Audio, d1.clone()).unwrap();
        b.on_signal(open);
        let d2 = desc(&mut tb);
        let sel = Selector::not_sending(d1.tag);
        b.accept(d2, sel.clone()).unwrap();

        let dup = Signal::Describe { desc: d1 };
        assert_eq!(reack_signals(&b, &dup), vec![Signal::Select { sel }]);

        // A *fresh* describe (new tag) is not a duplicate: the goal will
        // answer it, no reack.
        let d3 = desc(&mut ta);
        assert!(reack_signals(&b, &Signal::Describe { desc: d3 }).is_empty());
    }

    #[test]
    fn reliability_arms_backs_off_and_recovers() {
        let mut pb = MediaBox::new(BoxId(1));
        pb.add_slot(SlotId(0), true);
        let cfg = ReliableConfig {
            base_ms: 100,
            max_ms: 400,
            max_retries: 3,
        };
        let mut rel = Reliability::new(cfg);

        // Nothing pending: no commands.
        let (cmds, rec) = rel.sync(&pb, 0);
        assert!(cmds.is_empty() && rec.is_empty());
        assert!(rel.is_quiescent());

        // Open the slot: an await appears and the timer is armed.
        pb.set_goal(GoalSpec::Open {
            slot: SlotId(0),
            medium: Medium::Audio,
            policy: Policy::Server,
        });
        let (cmds, _) = rel.sync(&pb, 0);
        assert_eq!(
            cmds,
            vec![BoxCmd::SetTimer {
                id: retransmit_timer(SlotId(0)),
                after_ms: 100
            }]
        );
        assert!(!rel.is_quiescent());

        // First fire: resend with doubled backoff; then the cap binds.
        let t = retransmit_timer(SlotId(0));
        match rel.on_timer(&pb, t).unwrap() {
            TimerAction::Resend {
                signals, rearm_ms, ..
            } => {
                assert!(matches!(signals[0], Signal::Open { .. }));
                assert_eq!(rearm_ms, 200);
            }
            other => panic!("expected resend, got {other:?}"),
        }
        match rel.on_timer(&pb, t).unwrap() {
            TimerAction::Resend { rearm_ms, .. } => assert_eq!(rearm_ms, 400),
            other => panic!("expected resend, got {other:?}"),
        }
        match rel.on_timer(&pb, t).unwrap() {
            TimerAction::Resend { rearm_ms, .. } => assert_eq!(rearm_ms, 400, "capped"),
            other => panic!("expected resend, got {other:?}"),
        }

        // The oack arrives: the await resolves and a recovery is reported.
        let mut ts = TagSource::new(9);
        pb.on_signal(
            SlotId(0),
            Signal::Oack {
                desc: Descriptor::no_media(ts.next()),
            },
        );
        let (cmds, rec) = rel.sync(&pb, 750);
        assert!(cmds
            .iter()
            .any(|c| matches!(c, BoxCmd::CancelTimer(id) if *id == t)));
        // The selector await replaces the oack await (goal answered the
        // descriptor, but the peer's selector for ours hasn't arrived)...
        // for a no-media peer descriptor the openSlot policy answers
        // immediately, so only check the recovery record.
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].slot, SlotId(0));
        assert_eq!(rec[0].attempts, 3);
        assert_eq!(rec[0].elapsed_ms, 750);
    }

    #[test]
    fn exhausted_retries_park_the_slot() {
        let mut pb = MediaBox::new(BoxId(1));
        pb.add_slot(SlotId(0), true);
        let cfg = ReliableConfig {
            base_ms: 100,
            max_ms: 400,
            max_retries: 1,
        };
        let mut rel = Reliability::new(cfg);
        pb.set_goal(GoalSpec::Open {
            slot: SlotId(0),
            medium: Medium::Audio,
            policy: Policy::Server,
        });
        rel.sync(&pb, 0);
        let t = retransmit_timer(SlotId(0));
        assert!(matches!(
            rel.on_timer(&pb, t).unwrap(),
            TimerAction::Resend { .. }
        ));
        assert!(matches!(
            rel.on_timer(&pb, t).unwrap(),
            TimerAction::Parked { slot } if slot == SlotId(0)
        ));
        assert_eq!(rel.parked_slots().collect::<Vec<_>>(), vec![SlotId(0)]);

        // While parked with the same await, sync does not re-arm.
        let (cmds, _) = rel.sync(&pb, 1_000);
        assert!(cmds.is_empty());

        // Once the await resolves (peer finally answers), the park clears.
        let mut ts = TagSource::new(9);
        pb.on_signal(
            SlotId(0),
            Signal::Oack {
                desc: Descriptor::no_media(ts.next()),
            },
        );
        let (_, _) = rel.sync(&pb, 1_100);
        assert!(rel.parked_slots().next().is_none());
    }

    #[test]
    fn app_timers_pass_through() {
        let pb = MediaBox::new(BoxId(1));
        let mut rel = Reliability::new(ReliableConfig::default());
        assert!(rel.on_timer(&pb, TimerId(3)).is_none());
    }
}
