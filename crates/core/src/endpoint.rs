//! Ready-made application logics for common box roles.

use crate::boxes::GoalSpec;
use crate::goal::{AcceptMode, EndpointPolicy};
use crate::program::{AppLogic, BoxInput, Ctx};

/// A genuine media endpoint (user device or simple media resource): every
/// slot of every channel is controlled by a user agent with this endpoint's
/// policy. User actions are injected externally (by the simulator, the
/// tokio runtime, or a human).
pub struct EndpointLogic {
    policy: EndpointPolicy,
    mode: AcceptMode,
}

impl EndpointLogic {
    /// An endpoint with the given media policy and accept mode.
    pub fn new(policy: EndpointPolicy, mode: AcceptMode) -> Self {
        Self { policy, mode }
    }

    /// An auto-accepting endpoint, like a media resource that always
    /// answers (tone generator, bridge port, announcement player).
    pub fn resource(policy: EndpointPolicy) -> Self {
        Self::new(policy, AcceptMode::Auto)
    }

    /// A device that rings and waits for the user (manual accept).
    pub fn device(policy: EndpointPolicy) -> Self {
        Self::new(policy, AcceptMode::Manual)
    }
}

impl AppLogic for EndpointLogic {
    fn handle(&mut self, input: &BoxInput, ctx: &mut Ctx<'_>) {
        if let BoxInput::ChannelUp { slots, .. } = input {
            for s in slots {
                ctx.set_goal(GoalSpec::User {
                    slot: *s,
                    policy: self.policy.clone(),
                    mode: self.mode,
                });
            }
        }
    }
}

/// A box with no autonomous behaviour: goals are assigned externally
/// (tests and benchmarks drive it through closures).
#[derive(Default)]
pub struct NullLogic;

impl AppLogic for NullLogic {
    fn handle(&mut self, _input: &BoxInput, _ctx: &mut Ctx<'_>) {}
}
