//! The slot: one protocol endpoint of one tunnel (paper §III-A, Fig. 9).
//!
//! A `Slot` object sees every signal received from its tunnel and validates
//! every signal sent into it, so it maintains the complete
//! implementation-level state of the protocol endpoint: protocol state,
//! medium, and cached descriptors/selectors (paper §VII).
//!
//! The slot is a pure, sans-IO state machine: `on_signal` consumes one
//! incoming signal and returns an event for the controlling goal object plus
//! any protocol-mandated automatic response (`closeack`). Outgoing signals
//! are produced by the `send_*` methods, which validate against the protocol
//! of Fig. 9 and return the wire signal for the caller to transmit.

use crate::codec::Medium;
use crate::descriptor::{Descriptor, Selector};
use crate::error::ProtocolError;
use crate::signal::{Signal, SignalKind};

/// Protocol state of a slot (Fig. 9). The user-interface states of Fig. 5
/// map onto these; `Closing` is the extra protocol state not observable in
/// the user interface (§VI-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SlotState {
    /// No media channel exists (or it has been fully torn down).
    Closed,
    /// We sent `open` and await `oack` or `close`.
    Opening,
    /// We received `open` and have not yet answered.
    Opened,
    /// The channel is established; media may flow subject to muting.
    Flowing,
    /// We sent `close` and await `closeack`.
    Closing,
}

impl SlotState {
    /// The paper's Fig. 12 shorthand: `opening`, `opened` and `flowing` are
    /// *live*; `closed` and `closing` are *dead*.
    pub fn is_live(self) -> bool {
        matches!(
            self,
            SlotState::Opening | SlotState::Opened | SlotState::Flowing
        )
    }

    /// A dead state: no channel and none being opened (`closed`, `closing`).
    pub fn is_dead(self) -> bool {
        !self.is_live()
    }

    /// The paper's lower-case state name, as used in traces and ladders.
    pub fn name(self) -> &'static str {
        match self {
            SlotState::Closed => "closed",
            SlotState::Opening => "opening",
            SlotState::Opened => "opened",
            SlotState::Flowing => "flowing",
            SlotState::Closing => "closing",
        }
    }

    /// Every protocol state, in the declaration order of Fig. 9.
    pub const ALL: [SlotState; 5] = [
        SlotState::Closed,
        SlotState::Opening,
        SlotState::Opened,
        SlotState::Flowing,
        SlotState::Closing,
    ];

    /// The state after performing `action`, or `None` if the protocol
    /// forbids the action in this state. Queries [`SEND_RULES`]; the
    /// `send_*` methods of [`Slot`] validate against exactly this table.
    pub fn after_send(self, action: SlotAction) -> Option<SlotState> {
        SEND_RULES
            .iter()
            .find(|r| r.state == self && r.action == action)
            .map(|r| r.next)
    }

    /// The protocol actions legal in this state, in [`SEND_RULES`] order.
    /// The model checker derives its nondeterministic user-action menu
    /// from this, and the static analyzer uses it to judge whether a box
    /// program can ever perform an action it is annotated with.
    pub fn legal_sends(self) -> impl Iterator<Item = SlotAction> {
        SEND_RULES
            .iter()
            .filter(move |r| r.state == self)
            .map(|r| r.action)
    }

    /// The state after *receiving* a signal of class `kind`, plus any
    /// protocol-mandated automatic response. `initiator` is the slot's
    /// channel-initiator flag, which decides open/open races (§VI-B).
    /// Queries [`RECV_RULES`]; signals with no matching rule are tolerated
    /// and dropped without a state change, exactly as
    /// [`Slot::on_signal`] does.
    pub fn on_receive(self, kind: SignalKind, initiator: bool) -> (SlotState, Option<SignalKind>) {
        RECV_RULES
            .iter()
            .find(|r| {
                r.state == self && r.signal == kind && r.initiator.is_none_or(|i| i == initiator)
            })
            .map_or((self, None), |r| (r.next, r.auto))
    }
}

/// A protocol action a goal object can ask a slot to perform — the send
/// half of the Fig. 9 protocol FSM ([`SEND_RULES`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SlotAction {
    /// `!open` — attempt to open a media channel.
    Open,
    /// `!oack / !select` — accept a pending open.
    Accept,
    /// `!select` — answer the current peer descriptor.
    Select,
    /// `!describe` — send a new self-description.
    Describe,
    /// `!close` — close (or reject) the media channel.
    Close,
}

impl SlotAction {
    /// Every protocol action, in [`SEND_RULES`] order.
    pub const ALL: [SlotAction; 5] = [
        SlotAction::Open,
        SlotAction::Accept,
        SlotAction::Select,
        SlotAction::Describe,
        SlotAction::Close,
    ];

    /// Lower-case action name, as used in diagnostics and
    /// [`ProtocolError::BadState`].
    pub fn name(self) -> &'static str {
        match self {
            SlotAction::Open => "open",
            SlotAction::Accept => "accept",
            SlotAction::Select => "select",
            SlotAction::Describe => "describe",
            SlotAction::Close => "close",
        }
    }
}

/// One row of the send half of the protocol FSM: in `state`, `action` is
/// legal and leaves the slot in `next`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendRule {
    /// State the slot must be in for the action to be legal.
    pub state: SlotState,
    /// The action performed.
    pub action: SlotAction,
    /// State of the slot after the action.
    pub next: SlotState,
}

/// The send half of the Fig. 9 protocol FSM, as a queryable constant.
///
/// This is the single source of truth for which protocol actions are
/// legal in which slot state: the [`Slot`] `send_*` methods validate
/// against it, the model checker derives its action menu from it, and the
/// static analyzer (`ipmedia-analyze`) product-constructs box programs
/// against it. Actions not listed for a state are protocol violations
/// ([`ProtocolError::BadState`]).
pub const SEND_RULES: &[SendRule] = &[
    SendRule {
        state: SlotState::Closed,
        action: SlotAction::Open,
        next: SlotState::Opening,
    },
    SendRule {
        state: SlotState::Opened,
        action: SlotAction::Accept,
        next: SlotState::Flowing,
    },
    SendRule {
        state: SlotState::Flowing,
        action: SlotAction::Select,
        next: SlotState::Flowing,
    },
    SendRule {
        state: SlotState::Flowing,
        action: SlotAction::Describe,
        next: SlotState::Flowing,
    },
    SendRule {
        state: SlotState::Opening,
        action: SlotAction::Close,
        next: SlotState::Closing,
    },
    SendRule {
        state: SlotState::Opened,
        action: SlotAction::Close,
        next: SlotState::Closing,
    },
    SendRule {
        state: SlotState::Flowing,
        action: SlotAction::Close,
        next: SlotState::Closing,
    },
];

/// One row of the receive half of the protocol FSM: a signal of class
/// `signal` arriving in `state` moves the slot to `next` and mandates the
/// automatic response `auto`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvRule {
    /// State the slot is in when the signal arrives.
    pub state: SlotState,
    /// Class of the arriving signal.
    pub signal: SignalKind,
    /// Channel-initiator restriction: `Some(true)` applies only at the
    /// end that initiated the signaling channel (the open/open race
    /// winner, §VI-B), `Some(false)` only at the other end, `None` at
    /// both.
    pub initiator: Option<bool>,
    /// State of the slot after the signal is consumed.
    pub next: SlotState,
    /// Protocol-mandated automatic response, if any.
    pub auto: Option<SignalKind>,
}

/// The receive half of the Fig. 9 protocol FSM, as a queryable constant.
///
/// Rows cover every (state, signal) pair where the signal *does*
/// something — changes state or mandates an automatic response. Pairs
/// with no row are tolerated and dropped without a state change (the
/// protocol's idempotence, §VI). [`Slot::on_signal`] additionally
/// maintains descriptor/selector caches and staleness checks, but its
/// state transitions and automatic responses agree with this table
/// exactly (enforced by test).
pub const RECV_RULES: &[RecvRule] = &[
    // open
    RecvRule {
        state: SlotState::Closed,
        signal: SignalKind::Open,
        initiator: None,
        next: SlotState::Opened,
        auto: None,
    },
    // open/open race: the channel initiator wins and ignores the losing
    // open; the other end backs off and becomes the acceptor.
    RecvRule {
        state: SlotState::Opening,
        signal: SignalKind::Open,
        initiator: Some(false),
        next: SlotState::Opened,
        auto: None,
    },
    // oack
    RecvRule {
        state: SlotState::Opening,
        signal: SignalKind::Oack,
        initiator: None,
        next: SlotState::Flowing,
        auto: None,
    },
    RecvRule {
        state: SlotState::Closed,
        signal: SignalKind::Oack,
        initiator: None,
        next: SlotState::Closed,
        auto: Some(SignalKind::Close),
    },
    // close: every live state closes and acknowledges; a close/close race
    // and a defensive close-while-closed acknowledge without moving.
    RecvRule {
        state: SlotState::Opening,
        signal: SignalKind::Close,
        initiator: None,
        next: SlotState::Closed,
        auto: Some(SignalKind::CloseAck),
    },
    RecvRule {
        state: SlotState::Opened,
        signal: SignalKind::Close,
        initiator: None,
        next: SlotState::Closed,
        auto: Some(SignalKind::CloseAck),
    },
    RecvRule {
        state: SlotState::Flowing,
        signal: SignalKind::Close,
        initiator: None,
        next: SlotState::Closed,
        auto: Some(SignalKind::CloseAck),
    },
    RecvRule {
        state: SlotState::Closing,
        signal: SignalKind::Close,
        initiator: None,
        next: SlotState::Closing,
        auto: Some(SignalKind::CloseAck),
    },
    RecvRule {
        state: SlotState::Closed,
        signal: SignalKind::Close,
        initiator: None,
        next: SlotState::Closed,
        auto: Some(SignalKind::CloseAck),
    },
    // closeack
    RecvRule {
        state: SlotState::Closing,
        signal: SignalKind::CloseAck,
        initiator: None,
        next: SlotState::Closed,
        auto: None,
    },
    // describe / select: meaningful only while flowing; on a closed slot
    // they reveal a half-open peer, which only an explicit close can tear
    // down (the hole PR 2's fault campaign found dynamically).
    RecvRule {
        state: SlotState::Flowing,
        signal: SignalKind::Describe,
        initiator: None,
        next: SlotState::Flowing,
        auto: None,
    },
    RecvRule {
        state: SlotState::Closed,
        signal: SignalKind::Describe,
        initiator: None,
        next: SlotState::Closed,
        auto: Some(SignalKind::Close),
    },
    RecvRule {
        state: SlotState::Flowing,
        signal: SignalKind::Select,
        initiator: None,
        next: SlotState::Flowing,
        auto: None,
    },
    RecvRule {
        state: SlotState::Closed,
        signal: SignalKind::Select,
        initiator: None,
        next: SlotState::Closed,
        auto: Some(SignalKind::Close),
    },
];

/// Export the protocol rule tables as the plain-data form the runtime
/// invariant monitor consumes (`ipmedia_obs::monitor`).
///
/// Built from [`SEND_RULES`] and [`RECV_RULES`] — the same single source
/// of truth the implementation validates against, the analyzer
/// product-constructs with, and the model checker explores — so a
/// monitor verdict of "no rule explains this send" is exactly a
/// divergence from the verified model. The initiator restriction on the
/// open/open race row is intentionally erased: the monitor tracks
/// believed states, not initiator flags, and accepts either race
/// outcome.
pub fn monitor_rules() -> ipmedia_obs::monitor::MonitorRules {
    ipmedia_obs::monitor::MonitorRules {
        send: SEND_RULES
            .iter()
            .map(|r| ipmedia_obs::monitor::SendRuleData {
                state: r.state.name(),
                action: r.action.name(),
                next: r.next.name(),
            })
            .collect(),
        recv: RECV_RULES
            .iter()
            .map(|r| ipmedia_obs::monitor::RecvRuleData {
                state: r.state.name(),
                signal: r.signal.name(),
                next: r.next.name(),
                auto: r.auto.map(SignalKind::name),
            })
            .collect(),
    }
}

/// What an incoming signal meant, reported to the controlling goal object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlotEvent {
    /// An `open` arrived while we were closed; the goal must accept
    /// (oack + select) or reject (close). State is now `Opened`.
    OpenReceived {
        /// The medium the peer wants to open.
        medium: Medium,
    },
    /// An `open` arrived while we were `Opening` and this end loses the
    /// open/open race (it did not initiate the signaling channel, §VI-B).
    /// This end backs off and becomes the acceptor; state is now `Opened`.
    RaceBackoff {
        /// The medium the peer wants to open.
        medium: Medium,
    },
    /// An `open` arrived while we were `Opening` and this end wins the
    /// race; the losing open is simply ignored (§VI-B).
    RaceIgnored,
    /// Our `open` was accepted; state is now `Flowing`. The goal must send
    /// a selector answering the oack's descriptor (`?oack / !select`).
    Oacked,
    /// The peer closed (or rejected) the channel. A `closeack` has been
    /// sent automatically; state is now `Closed`. `was` is the state in
    /// which the close arrived — `Opening` means our open was rejected.
    PeerClosed {
        /// The state in which the close arrived.
        was: SlotState,
    },
    /// Our `close` was acknowledged; state is now `Closed`.
    CloseAcked,
    /// A new peer descriptor arrived (`describe`). The goal must respond
    /// with a selector, if only to show the descriptor was received (§VI-B).
    Described,
    /// A selector arrived. `fresh` is true iff it answers the descriptor we
    /// most recently sent; obsolete selectors are reported so flowlinks can
    /// discard them (§VII).
    Selected {
        /// Whether the selector answers our most recent descriptor.
        fresh: bool,
    },
    /// A stale or duplicate signal was tolerated and dropped.
    Ignored(&'static str),
}

/// One protocol endpoint of one tunnel.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Slot {
    state: SlotState,
    /// Medium of the current (or pending) media channel.
    medium: Option<Medium>,
    /// True iff this end initiated setup of the signaling channel; the
    /// initiator wins an open/open race (§VI-B).
    channel_initiator: bool,
    /// Most recent descriptor received (in `open`, `oack`, or `describe`);
    /// "the descriptor of a slot" in the paper's sense (§VII).
    peer_desc: Option<Descriptor>,
    /// Most recent descriptor we sent (in `open`, `oack`, or `describe`).
    sent_desc: Option<Descriptor>,
    /// Most recent selector received.
    peer_sel: Option<Selector>,
    /// Most recent selector we sent.
    sent_sel: Option<Selector>,
}

impl Slot {
    /// A fresh, closed slot. `channel_initiator` must be true at exactly
    /// one end of each tunnel (the end whose box initiated setup of the
    /// signaling channel).
    pub fn new(channel_initiator: bool) -> Self {
        Self {
            state: SlotState::Closed,
            medium: None,
            channel_initiator,
            peer_desc: None,
            sent_desc: None,
            peer_sel: None,
            sent_sel: None,
        }
    }

    /// The slot's current protocol state.
    pub fn state(&self) -> SlotState {
        self.state
    }

    /// The medium of the current (or opening) media channel.
    pub fn medium(&self) -> Option<Medium> {
        self.medium
    }

    /// True iff this box initiated setup of the slot's signaling channel
    /// (the open/open race tiebreaker, §VI-B).
    pub fn is_channel_initiator(&self) -> bool {
        self.channel_initiator
    }

    /// The slot's current peer descriptor, i.e. the most recent descriptor
    /// received in an `open`, `oack`, or `describe` signal (§VII).
    pub fn peer_desc(&self) -> Option<&Descriptor> {
        self.peer_desc.as_ref()
    }

    /// The descriptor we most recently sent into the tunnel.
    pub fn sent_desc(&self) -> Option<&Descriptor> {
        self.sent_desc.as_ref()
    }

    /// The selector we most recently received.
    pub fn peer_sel(&self) -> Option<&Selector> {
        self.peer_sel.as_ref()
    }

    /// The selector we most recently sent.
    pub fn sent_sel(&self) -> Option<&Selector> {
        self.sent_sel.as_ref()
    }

    /// A slot is *described* if it holds a current peer descriptor; only
    /// slots in the `opened` and `flowing` states are described (§VII).
    pub fn is_described(&self) -> bool {
        matches!(self.state, SlotState::Opened | SlotState::Flowing) && self.peer_desc.is_some()
    }

    /// History variable of §VI-C: this end has *enabled* transmission iff it
    /// is flowing and the selector it most recently sent carries a real
    /// codec.
    pub fn tx_enabled(&self) -> bool {
        self.state == SlotState::Flowing
            && self
                .sent_sel
                .as_ref()
                .is_some_and(super::descriptor::Selector::is_sending)
    }

    /// This end should be ready to receive media iff it is flowing and the
    /// most recently received selector carries a real codec (§VI-B).
    pub fn rx_expected(&self) -> bool {
        self.state == SlotState::Flowing
            && self
                .peer_sel
                .as_ref()
                .is_some_and(super::descriptor::Selector::is_sending)
    }

    /// Where and how this end currently transmits media: the address from
    /// the peer's current descriptor and the codec from our selector — but
    /// only while our selector answers that descriptor (a re-describe not
    /// yet answered suspends transmission until the fresh selector is sent).
    pub fn tx_route(&self) -> Option<(crate::descriptor::MediaAddr, crate::codec::Codec)> {
        if !self.tx_enabled() {
            return None;
        }
        let sel = self.sent_sel.as_ref()?;
        let desc = self.peer_desc.as_ref()?;
        if sel.answers != desc.tag {
            return None;
        }
        Some((desc.addr?, sel.codec))
    }

    /// Mutable access to cached records, for tag canonicalization
    /// (`crate::retag`). Not part of the protocol API.
    #[doc(hidden)]
    pub fn peer_desc_mut(&mut self) -> Option<&mut Descriptor> {
        self.peer_desc.as_mut()
    }

    #[doc(hidden)]
    pub fn sent_desc_mut(&mut self) -> Option<&mut Descriptor> {
        self.sent_desc.as_mut()
    }

    #[doc(hidden)]
    pub fn peer_sel_mut(&mut self) -> Option<&mut Selector> {
        self.peer_sel.as_mut()
    }

    #[doc(hidden)]
    pub fn sent_sel_mut(&mut self) -> Option<&mut Selector> {
        self.sent_sel.as_mut()
    }

    // --- predicates of §IV-A, usable as transition guards in box programs ---

    /// `isClosed` guard predicate (§IV-A).
    pub fn is_closed(&self) -> bool {
        self.state == SlotState::Closed
    }

    /// `isOpening` guard predicate (§IV-A).
    pub fn is_opening(&self) -> bool {
        self.state == SlotState::Opening
    }

    /// `isOpened` guard predicate (§IV-A).
    pub fn is_opened(&self) -> bool {
        self.state == SlotState::Opened
    }

    /// `isFlowing` guard predicate (§IV-A).
    pub fn is_flowing(&self) -> bool {
        self.state == SlotState::Flowing
    }

    // ------------------------------------------------------------------
    // Incoming signals
    // ------------------------------------------------------------------

    /// Consume one incoming signal: update state, auto-respond where the
    /// protocol mandates it (`closeack`), and report what happened.
    pub fn on_signal(&mut self, signal: Signal) -> (SlotEvent, Vec<Signal>) {
        use SlotState::{Closed, Closing, Flowing, Opened, Opening};
        match signal {
            Signal::Open { medium, desc } => match self.state {
                Closed => {
                    self.state = Opened;
                    self.medium = Some(medium);
                    self.peer_desc = Some(desc);
                    self.peer_sel = None;
                    (SlotEvent::OpenReceived { medium }, vec![])
                }
                Opening => {
                    if self.channel_initiator {
                        // We win the race; the losing open is ignored.
                        (SlotEvent::RaceIgnored, vec![])
                    } else {
                        // We lose: back off and act as the acceptor instead.
                        self.state = Opened;
                        self.medium = Some(medium);
                        self.peer_desc = Some(desc);
                        (SlotEvent::RaceBackoff { medium }, vec![])
                    }
                }
                _ => (SlotEvent::Ignored("open in unexpected state"), vec![]),
            },
            Signal::Oack { desc } => match self.state {
                Opening => {
                    self.state = Flowing;
                    self.peer_desc = Some(desc);
                    (SlotEvent::Oacked, vec![])
                }
                Closed => (SlotEvent::Ignored("oack while closed"), vec![Signal::Close]),
                _ => (SlotEvent::Ignored("stale oack"), vec![]),
            },
            Signal::Close => match self.state {
                Opening | Opened | Flowing => {
                    let was = self.state;
                    self.reset_to_closed();
                    (SlotEvent::PeerClosed { was }, vec![Signal::CloseAck])
                }
                Closing => {
                    // close/close race: acknowledge theirs, keep waiting
                    // for the acknowledgement of ours.
                    (
                        SlotEvent::Ignored("close/close race"),
                        vec![Signal::CloseAck],
                    )
                }
                Closed => {
                    // Defensive: acknowledge so a confused peer cannot hang.
                    (
                        SlotEvent::Ignored("close while closed"),
                        vec![Signal::CloseAck],
                    )
                }
            },
            Signal::CloseAck => match self.state {
                Closing => {
                    self.reset_to_closed();
                    (SlotEvent::CloseAcked, vec![])
                }
                _ => (SlotEvent::Ignored("stale closeack"), vec![]),
            },
            Signal::Describe { desc } => match self.state {
                Flowing => {
                    // A reordered describe from an earlier generation of the
                    // same source must not regress the current descriptor
                    // (tag generations order descriptors per origin).
                    let stale = self.peer_desc.as_ref().is_some_and(|cur| {
                        cur.tag.origin == desc.tag.origin
                            && desc.tag.generation < cur.tag.generation
                    });
                    if stale {
                        (SlotEvent::Ignored("stale describe"), vec![])
                    } else {
                        self.peer_desc = Some(desc);
                        (SlotEvent::Described, vec![])
                    }
                }
                Closed => (
                    SlotEvent::Ignored("describe while closed"),
                    vec![Signal::Close],
                ),
                _ => (SlotEvent::Ignored("describe in non-flowing state"), vec![]),
            },
            Signal::Select { sel } => match self.state {
                Flowing => {
                    let fresh = self
                        .sent_desc
                        .as_ref()
                        .is_some_and(|d| sel.answers == d.tag);
                    // A stale selector (answering an outdated descriptor)
                    // never overwrites a fresh answer — a reordered network
                    // must not regress converged state (§VI).
                    let have_fresh = !fresh
                        && self
                            .sent_desc
                            .as_ref()
                            .zip(self.peer_sel.as_ref())
                            .is_some_and(|(d, p)| p.answers == d.tag);
                    if have_fresh {
                        (SlotEvent::Ignored("stale selector"), vec![])
                    } else {
                        self.peer_sel = Some(sel);
                        (SlotEvent::Selected { fresh }, vec![])
                    }
                }
                Closed => (
                    SlotEvent::Ignored("select while closed"),
                    vec![Signal::Close],
                ),
                _ => (SlotEvent::Ignored("select in non-flowing state"), vec![]),
            },
        }
    }

    // ------------------------------------------------------------------
    // Outgoing signals (invoked by goal objects)
    // ------------------------------------------------------------------

    /// Validate `action` against [`SEND_RULES`] and return the successor
    /// state, or the [`ProtocolError::BadState`] the protocol mandates.
    fn check_send(&self, action: SlotAction) -> Result<SlotState, ProtocolError> {
        self.state
            .after_send(action)
            .ok_or(ProtocolError::BadState {
                action: action.name(),
                state: self.state,
            })
    }

    /// Attempt to open a media channel (`!open`). Legal only when closed.
    pub fn send_open(&mut self, medium: Medium, desc: Descriptor) -> Result<Signal, ProtocolError> {
        self.state = self.check_send(SlotAction::Open)?;
        self.medium = Some(medium);
        self.sent_desc = Some(desc.clone());
        self.sent_sel = None;
        self.peer_sel = None;
        Ok(Signal::Open { medium, desc })
    }

    /// Accept a pending open: send `oack` carrying our descriptor followed
    /// by a selector answering the open's descriptor (`!oack / !select`,
    /// Fig. 9). Legal only in `Opened`.
    pub fn accept(
        &mut self,
        desc: Descriptor,
        sel: Selector,
    ) -> Result<[Signal; 2], ProtocolError> {
        let next = self.check_send(SlotAction::Accept)?;
        let peer = self.peer_desc.as_ref().expect("opened slot is described");
        if !sel.answers_validly(peer) {
            return Err(ProtocolError::StaleSelector);
        }
        self.state = next;
        self.sent_desc = Some(desc.clone());
        self.sent_sel = Some(sel.clone());
        Ok([Signal::Oack { desc }, Signal::Select { sel }])
    }

    /// Send a selector answering the current peer descriptor. Legal in
    /// `Flowing` (including immediately after `Oacked`); selectors in the
    /// two directions do not constrain each other (§VI-C).
    pub fn send_select(&mut self, sel: Selector) -> Result<Signal, ProtocolError> {
        self.state = self.check_send(SlotAction::Select)?;
        let peer = self
            .peer_desc
            .as_ref()
            .ok_or(ProtocolError::InvalidRecord("no peer descriptor to answer"))?;
        if !sel.answers_validly(peer) {
            return Err(ProtocolError::StaleSelector);
        }
        self.sent_sel = Some(sel.clone());
        Ok(Signal::Select { sel })
    }

    /// Send a new self-description. Legal any time after `oack` has been
    /// sent or received, i.e. in `Flowing` (§VI-B).
    pub fn send_describe(&mut self, desc: Descriptor) -> Result<Signal, ProtocolError> {
        self.state = self.check_send(SlotAction::Describe)?;
        self.sent_desc = Some(desc.clone());
        Ok(Signal::Describe { desc })
    }

    /// Close (or reject) the media channel. Legal from any live state.
    pub fn send_close(&mut self) -> Result<Signal, ProtocolError> {
        self.state = self.check_send(SlotAction::Close)?;
        Ok(Signal::Close)
    }

    fn reset_to_closed(&mut self) {
        self.state = SlotState::Closed;
        self.medium = None;
        self.peer_desc = None;
        self.sent_desc = None;
        self.peer_sel = None;
        self.sent_sel = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Codec;
    use crate::descriptor::{DescTag, MediaAddr, TagSource};

    fn desc(ts: &mut TagSource) -> Descriptor {
        Descriptor::media(
            ts.next(),
            MediaAddr::v4(10, 0, 0, 1, 4000),
            vec![Codec::G711, Codec::G726],
        )
    }

    fn nm_desc(ts: &mut TagSource) -> Descriptor {
        Descriptor::no_media(ts.next())
    }

    /// Drive a pair of connected slots: deliver `sig` from `from` to `to`,
    /// returning the event and forwarding auto-responses back.
    fn deliver(to: &mut Slot, sig: Signal) -> (SlotEvent, Vec<Signal>) {
        to.on_signal(sig)
    }

    #[test]
    fn happy_path_open_accept_flow_close() {
        // Reproduces the first half of the paper's Fig. 10 scenario.
        let mut a = Slot::new(true);
        let mut b = Slot::new(false);
        let mut ta = TagSource::new(1);
        let mut tb = TagSource::new(2);

        let d1 = desc(&mut ta);
        let open = a.send_open(Medium::Audio, d1.clone()).unwrap();
        assert_eq!(a.state(), SlotState::Opening);

        let (ev, auto) = deliver(&mut b, open);
        assert_eq!(
            ev,
            SlotEvent::OpenReceived {
                medium: Medium::Audio
            }
        );
        assert!(auto.is_empty());
        assert_eq!(b.state(), SlotState::Opened);
        assert!(b.is_described());

        // B accepts: oack(desc2) + select answering desc1.
        let d2 = desc(&mut tb);
        let sel2 = Selector::sending(d1.tag, MediaAddr::v4(10, 0, 0, 2, 5000), Codec::G711);
        let [oack, select] = b.accept(d2.clone(), sel2).unwrap();
        assert_eq!(b.state(), SlotState::Flowing);
        assert!(b.tx_enabled());

        let (ev, _) = deliver(&mut a, oack);
        assert_eq!(ev, SlotEvent::Oacked);
        assert_eq!(a.state(), SlotState::Flowing);
        assert_eq!(a.peer_desc().unwrap().tag, d2.tag);

        let (ev, _) = deliver(&mut a, select);
        assert_eq!(ev, SlotEvent::Selected { fresh: true });
        assert!(a.rx_expected());

        // A answers the oack's descriptor.
        let sel1 = Selector::sending(d2.tag, MediaAddr::v4(10, 0, 0, 1, 4000), Codec::G711);
        let sig = a.send_select(sel1).unwrap();
        assert!(a.tx_enabled());
        let (ev, _) = deliver(&mut b, sig);
        assert_eq!(ev, SlotEvent::Selected { fresh: true });
        assert!(b.rx_expected());

        // Close handshake.
        let close = a.send_close().unwrap();
        assert_eq!(a.state(), SlotState::Closing);
        assert!(!a.tx_enabled(), "leaving flowing disables transmission");
        let (ev, auto) = deliver(&mut b, close);
        assert_eq!(
            ev,
            SlotEvent::PeerClosed {
                was: SlotState::Flowing
            }
        );
        assert_eq!(b.state(), SlotState::Closed);
        let (ev, _) = deliver(&mut a, auto.into_iter().next().unwrap());
        assert_eq!(ev, SlotEvent::CloseAcked);
        assert_eq!(a.state(), SlotState::Closed);
    }

    #[test]
    fn reject_is_close_while_opening() {
        let mut a = Slot::new(true);
        let mut b = Slot::new(false);
        let mut ta = TagSource::new(1);

        let open = a.send_open(Medium::Audio, nm_desc(&mut ta)).unwrap();
        deliver(&mut b, open);
        let close = b.send_close().unwrap(); // reject
        let (ev, auto) = deliver(&mut a, close);
        assert_eq!(
            ev,
            SlotEvent::PeerClosed {
                was: SlotState::Opening
            }
        );
        assert_eq!(a.state(), SlotState::Closed);
        let (ev, _) = deliver(&mut b, auto.into_iter().next().unwrap());
        assert_eq!(ev, SlotEvent::CloseAcked);
        assert_eq!(b.state(), SlotState::Closed);
    }

    #[test]
    fn open_open_race_initiator_wins() {
        // §VI-B: the winner is always the end that initiated setup of the
        // signaling channel; the losing open is simply ignored.
        let mut a = Slot::new(true); // channel initiator
        let mut b = Slot::new(false);
        let mut ta = TagSource::new(1);
        let mut tb = TagSource::new(2);

        let open_a = a.send_open(Medium::Audio, desc(&mut ta)).unwrap();
        let open_b = b.send_open(Medium::Audio, desc(&mut tb)).unwrap();

        let (ev, _) = deliver(&mut a, open_b);
        assert_eq!(ev, SlotEvent::RaceIgnored);
        assert_eq!(a.state(), SlotState::Opening);

        let (ev, _) = deliver(&mut b, open_a);
        assert!(matches!(
            ev,
            SlotEvent::RaceBackoff {
                medium: Medium::Audio
            }
        ));
        assert_eq!(b.state(), SlotState::Opened);

        // b now accepts as if it had been opened.
        let d2 = desc(&mut tb);
        let answer = Selector::sending(
            a.sent_desc().unwrap().tag,
            MediaAddr::v4(10, 0, 0, 2, 5000),
            Codec::G711,
        );
        let [oack, select] = b.accept(d2, answer).unwrap();
        let (ev, _) = deliver(&mut a, oack);
        assert_eq!(ev, SlotEvent::Oacked);
        let (ev, _) = deliver(&mut a, select);
        assert_eq!(ev, SlotEvent::Selected { fresh: true });
        assert_eq!(a.state(), SlotState::Flowing);
    }

    #[test]
    fn close_close_race_resolves() {
        let mut a = Slot::new(true);
        let mut b = Slot::new(false);
        let mut ta = TagSource::new(1);
        let mut tb = TagSource::new(2);

        // Establish a flowing channel.
        let open = a.send_open(Medium::Audio, desc(&mut ta)).unwrap();
        deliver(&mut b, open);
        let d2 = desc(&mut tb);
        let answer = Selector::not_sending(a.sent_desc().unwrap().tag);
        let [oack, select] = b.accept(d2, answer).unwrap();
        deliver(&mut a, oack);
        deliver(&mut a, select);

        // Both close simultaneously.
        let close_a = a.send_close().unwrap();
        let close_b = b.send_close().unwrap();

        let (ev, auto_a) = deliver(&mut a, close_b);
        assert_eq!(ev, SlotEvent::Ignored("close/close race"));
        assert_eq!(auto_a, vec![Signal::CloseAck]);
        let (ev, auto_b) = deliver(&mut b, close_a);
        assert_eq!(ev, SlotEvent::Ignored("close/close race"));
        assert_eq!(auto_b, vec![Signal::CloseAck]);

        let (ev, _) = deliver(&mut a, auto_b.into_iter().next().unwrap());
        assert_eq!(ev, SlotEvent::CloseAcked);
        let (ev, _) = deliver(&mut b, auto_a.into_iter().next().unwrap());
        assert_eq!(ev, SlotEvent::CloseAcked);
        assert_eq!(a.state(), SlotState::Closed);
        assert_eq!(b.state(), SlotState::Closed);
    }

    #[test]
    fn describe_reselect_cycle() {
        // Second half of Fig. 10: a new descriptor at any time, answered by
        // a new selector.
        let mut a = Slot::new(true);
        let mut b = Slot::new(false);
        let mut ta = TagSource::new(1);
        let mut tb = TagSource::new(2);

        let open = a.send_open(Medium::Audio, desc(&mut ta)).unwrap();
        deliver(&mut b, open);
        let d2 = desc(&mut tb);
        let answer = Selector::not_sending(a.sent_desc().unwrap().tag);
        let [oack, select] = b.accept(d2, answer).unwrap();
        deliver(&mut a, oack);
        deliver(&mut a, select);

        // A re-describes itself (e.g. its mute state changed).
        let d3 = desc(&mut ta);
        let sig = a.send_describe(d3.clone()).unwrap();
        let (ev, _) = deliver(&mut b, sig);
        assert_eq!(ev, SlotEvent::Described);
        assert_eq!(b.peer_desc().unwrap().tag, d3.tag);

        // B answers with a fresh selector; A sees it as fresh.
        let sel = Selector::sending(d3.tag, MediaAddr::v4(10, 0, 0, 2, 5000), Codec::G726);
        let sig = b.send_select(sel).unwrap();
        let (ev, _) = deliver(&mut a, sig);
        assert_eq!(ev, SlotEvent::Selected { fresh: true });
    }

    #[test]
    fn obsolete_selector_is_flagged_stale() {
        let mut a = Slot::new(true);
        let mut b = Slot::new(false);
        let mut ta = TagSource::new(1);
        let mut tb = TagSource::new(2);

        let d1 = desc(&mut ta);
        let open = a.send_open(Medium::Audio, d1.clone()).unwrap();
        deliver(&mut b, open);
        let d2 = desc(&mut tb);
        let answer = Selector::not_sending(d1.tag);
        let [oack, select] = b.accept(d2, answer).unwrap();
        deliver(&mut a, oack);
        deliver(&mut a, select);

        // A re-describes; a selector answering the *old* descriptor is
        // then reported as not fresh.
        let d3 = desc(&mut ta);
        let _ = a.send_describe(d3).unwrap();
        let old_sel = Signal::Select {
            sel: Selector::sending(d1.tag, MediaAddr::v4(10, 0, 0, 2, 5000), Codec::G711),
        };
        let (ev, _) = deliver(&mut a, old_sel);
        assert_eq!(ev, SlotEvent::Selected { fresh: false });
    }

    #[test]
    fn stale_selector_never_overwrites_fresh_answer() {
        // A re-describes (d1 → d3) and B's fresh answer to d3 arrives
        // first; the reordered old answer to d1 must not regress it.
        let mut a = Slot::new(true);
        let mut b = Slot::new(false);
        let mut ta = TagSource::new(1);
        let mut tb = TagSource::new(2);

        let d1 = desc(&mut ta);
        let open = a.send_open(Medium::Audio, d1.clone()).unwrap();
        deliver(&mut b, open);
        let d2 = desc(&mut tb);
        let [oack, select] = b.accept(d2, Selector::not_sending(d1.tag)).unwrap();
        deliver(&mut a, oack);
        deliver(&mut a, select);

        let d3 = desc(&mut ta);
        let _ = a.send_describe(d3.clone()).unwrap();
        let fresh = Selector::sending(d3.tag, MediaAddr::v4(10, 0, 0, 2, 5000), Codec::G726);
        let (ev, _) = deliver(&mut a, Signal::Select { sel: fresh.clone() });
        assert_eq!(ev, SlotEvent::Selected { fresh: true });

        // The late answer to d1 arrives out of order: ignored.
        let stale = Selector::sending(d1.tag, MediaAddr::v4(10, 0, 0, 2, 5000), Codec::G711);
        let (ev, _) = deliver(&mut a, Signal::Select { sel: stale });
        assert_eq!(ev, SlotEvent::Ignored("stale selector"));
        assert_eq!(a.peer_sel(), Some(&fresh));
    }

    #[test]
    fn stale_describe_never_regresses_current_descriptor() {
        let mut a = Slot::new(true);
        let mut b = Slot::new(false);
        let mut ta = TagSource::new(1);
        let mut tb = TagSource::new(2);

        let d1 = desc(&mut ta);
        let open = a.send_open(Medium::Audio, d1.clone()).unwrap();
        deliver(&mut b, open);
        let d2 = desc(&mut tb);
        let [oack, select] = b.accept(d2, Selector::not_sending(d1.tag)).unwrap();
        deliver(&mut a, oack);
        deliver(&mut a, select);

        // A's second descriptor overtakes the duplicate of its first.
        let d3 = desc(&mut ta);
        let (ev, _) = deliver(&mut b, Signal::Describe { desc: d3.clone() });
        assert_eq!(ev, SlotEvent::Described);
        let (ev, _) = deliver(&mut b, Signal::Describe { desc: d1 });
        assert_eq!(ev, SlotEvent::Ignored("stale describe"));
        assert_eq!(b.peer_desc().unwrap().tag, d3.tag);

        // A duplicate of the *current* descriptor is re-processed (it
        // re-triggers the goal's answer — the lost-select recovery path).
        let (ev, _) = deliver(&mut b, Signal::Describe { desc: d3.clone() });
        assert_eq!(ev, SlotEvent::Described);
        assert_eq!(b.peer_desc().unwrap().tag, d3.tag);
    }

    #[test]
    fn stale_select_send_is_rejected() {
        let mut a = Slot::new(true);
        let mut b = Slot::new(false);
        let mut ta = TagSource::new(1);
        let mut tb = TagSource::new(2);

        let d1 = desc(&mut ta);
        let open = a.send_open(Medium::Audio, d1.clone()).unwrap();
        deliver(&mut b, open);
        let d2 = desc(&mut tb);
        let answer = Selector::not_sending(d1.tag);
        let [oack, _] = b.accept(d2.clone(), answer).unwrap();
        deliver(&mut a, oack);

        // Answering a tag that is not the current peer descriptor fails.
        let wrong = Selector::not_sending(DescTag {
            origin: 99,
            generation: 0,
        });
        assert_eq!(a.send_select(wrong), Err(ProtocolError::StaleSelector));
        // Answering the current one succeeds.
        let right = Selector::sending(d2.tag, MediaAddr::v4(1, 1, 1, 1, 2), Codec::G711);
        assert!(a.send_select(right).is_ok());
    }

    #[test]
    fn send_validation_per_state() {
        let mut s = Slot::new(true);
        let mut ts = TagSource::new(1);
        // Closed: cannot close, describe, select.
        assert!(s.send_close().is_err());
        assert!(s.send_describe(nm_desc(&mut ts)).is_err());
        assert!(s.send_select(Selector::not_sending(ts.next())).is_err());
        // Opening: cannot open again.
        s.send_open(Medium::Audio, nm_desc(&mut ts)).unwrap();
        assert!(s.send_open(Medium::Audio, nm_desc(&mut ts)).is_err());
        // Closing: cannot open yet.
        let _ = s.send_close().unwrap();
        assert!(s.send_open(Medium::Audio, nm_desc(&mut ts)).is_err());
        // After closeack: closed again, can open.
        s.on_signal(Signal::CloseAck);
        assert!(s.send_open(Medium::Audio, nm_desc(&mut ts)).is_ok());
    }

    #[test]
    fn stale_signals_are_tolerated() {
        let mut s = Slot::new(true);
        let mut ts = TagSource::new(9);
        let d = nm_desc(&mut ts);
        // A stray closeack while closed is dropped silently.
        let (ev, auto) = s.on_signal(Signal::CloseAck);
        assert!(matches!(ev, SlotEvent::Ignored(_)));
        assert!(auto.is_empty());
        assert_eq!(s.state(), SlotState::Closed);
        // Flowing-phase signals while closed are rejected with a close:
        // the sender believes the connection exists (e.g. a duplicated
        // open re-created its side after we closed), and only an explicit
        // close can tear that half-open state down.
        for sig in [
            Signal::Oack { desc: d.clone() },
            Signal::Describe { desc: d.clone() },
            Signal::Select {
                sel: Selector::not_sending(d.tag),
            },
        ] {
            let (ev, auto) = s.on_signal(sig);
            assert!(matches!(ev, SlotEvent::Ignored(_)));
            assert_eq!(auto, vec![Signal::Close]);
            assert_eq!(s.state(), SlotState::Closed);
        }
        // A close while closed is acknowledged defensively.
        let (ev, auto) = s.on_signal(Signal::Close);
        assert!(matches!(ev, SlotEvent::Ignored(_)));
        assert_eq!(auto, vec![Signal::CloseAck]);
    }

    #[test]
    fn closed_slot_rejects_half_open_peer_with_close() {
        // A duplicated open re-delivered after a full open/close cycle can
        // re-open the answering side while the initiator stays closed. The
        // initiator's close-rejection of the answerer's oack must tear the
        // half-open connection back down.
        let mut a = Slot::new(true);
        let mut b = Slot::new(false);
        let mut ta = TagSource::new(1);

        let d1 = nm_desc(&mut ta);
        let open = a.send_open(Medium::Audio, d1.clone()).unwrap();
        deliver(&mut b, open.clone());
        let close = a.send_close().unwrap();
        let (_, autos) = deliver(&mut b, close);
        for sig in autos {
            deliver(&mut a, sig); // closeack -> a is Closed
        }
        assert_eq!(a.state(), SlotState::Closed);
        assert_eq!(b.state(), SlotState::Closed);

        // The adversary re-delivers the duplicated open: b re-opens and
        // its application (unaware this open is stale) accepts.
        let mut tb = TagSource::new(2);
        let d2 = nm_desc(&mut tb);
        let (_, autos) = deliver(&mut b, open);
        assert!(autos.is_empty());
        assert_eq!(b.state(), SlotState::Opened);
        let [oack, select] = b.accept(d2.clone(), Selector::not_sending(d1.tag)).unwrap();
        assert_eq!(b.state(), SlotState::Flowing);

        // b's oack and select hit a's closed slot; the auto-closes they
        // provoke must bring b back down, and the closeacks are absorbed
        // silently.
        let mut queue: Vec<Signal> = vec![oack, select];
        while let Some(sig) = queue.pop() {
            let (_, back) = deliver(&mut a, sig);
            for sig in back {
                let (_, more) = deliver(&mut b, sig);
                queue.extend(more);
            }
        }
        assert_eq!(a.state(), SlotState::Closed);
        assert_eq!(b.state(), SlotState::Closed);
    }

    #[test]
    fn peer_close_resets_all_cached_state() {
        let mut a = Slot::new(true);
        let mut b = Slot::new(false);
        let mut ta = TagSource::new(1);
        let mut tb = TagSource::new(2);

        let open = a.send_open(Medium::Audio, desc(&mut ta)).unwrap();
        deliver(&mut b, open);
        let [oack, select] = b
            .accept(
                desc(&mut tb),
                Selector::not_sending(a.sent_desc().unwrap().tag),
            )
            .unwrap();
        deliver(&mut a, oack);
        deliver(&mut a, select);

        let close = b.send_close().unwrap();
        deliver(&mut a, close);
        assert_eq!(a.state(), SlotState::Closed);
        assert!(a.peer_desc().is_none());
        assert!(a.sent_desc().is_none());
        assert!(a.peer_sel().is_none());
        assert!(a.sent_sel().is_none());
        assert_eq!(a.medium(), None);
    }

    #[test]
    fn live_dead_classification() {
        assert!(SlotState::Opening.is_live());
        assert!(SlotState::Opened.is_live());
        assert!(SlotState::Flowing.is_live());
        assert!(SlotState::Closed.is_dead());
        assert!(SlotState::Closing.is_dead());
    }

    /// Drive a fresh slot into `state` (with the given initiator flag).
    fn slot_in(state: SlotState, initiator: bool) -> Slot {
        let mut s = Slot::new(initiator);
        let mut own = TagSource::new(40);
        let mut peer = TagSource::new(41);
        match state {
            SlotState::Closed => {}
            SlotState::Opening => {
                s.send_open(Medium::Audio, nm_desc(&mut own)).unwrap();
            }
            SlotState::Opened => {
                s.on_signal(Signal::Open {
                    medium: Medium::Audio,
                    desc: nm_desc(&mut peer),
                });
            }
            SlotState::Flowing => {
                let d = nm_desc(&mut peer);
                s.on_signal(Signal::Open {
                    medium: Medium::Audio,
                    desc: d.clone(),
                });
                s.accept(nm_desc(&mut own), Selector::not_sending(d.tag))
                    .unwrap();
            }
            SlotState::Closing => {
                s.send_open(Medium::Audio, nm_desc(&mut own)).unwrap();
                s.send_close().unwrap();
            }
        }
        assert_eq!(s.state(), state);
        s
    }

    #[test]
    fn send_rules_agree_with_slot_validation() {
        // SEND_RULES is the single source of truth: every send_* method
        // must accept exactly the (state, action) pairs the table lists,
        // and land in the state the table names.
        for state in SlotState::ALL {
            for action in SlotAction::ALL {
                let mut s = slot_in(state, true);
                let mut ts = TagSource::new(60);
                let expected = state.after_send(action);
                let result = match action {
                    SlotAction::Open => s.send_open(Medium::Audio, nm_desc(&mut ts)).map(|_| ()),
                    SlotAction::Accept => {
                        let answers = s.peer_desc().map_or(
                            DescTag {
                                origin: 99,
                                generation: 0,
                            },
                            |d| d.tag,
                        );
                        s.accept(nm_desc(&mut ts), Selector::not_sending(answers))
                            .map(|_| ())
                    }
                    SlotAction::Select => {
                        let answers = s.peer_desc().map_or(
                            DescTag {
                                origin: 99,
                                generation: 0,
                            },
                            |d| d.tag,
                        );
                        s.send_select(Selector::not_sending(answers)).map(|_| ())
                    }
                    SlotAction::Describe => s.send_describe(nm_desc(&mut ts)).map(|_| ()),
                    SlotAction::Close => s.send_close().map(|_| ()),
                };
                if let Some(next) = expected {
                    assert!(
                        result.is_ok(),
                        "{action:?} must be legal in {state:?}: {result:?}"
                    );
                    assert_eq!(s.state(), next, "{action:?} from {state:?}");
                } else {
                    assert_eq!(
                        result,
                        Err(ProtocolError::BadState {
                            action: action.name(),
                            state,
                        }),
                        "{action:?} must be illegal in {state:?}"
                    );
                    assert_eq!(s.state(), state, "failed send must not move the slot");
                }
            }
        }
    }

    #[test]
    fn monitor_rules_mirror_the_tables() {
        let rules = monitor_rules();
        assert_eq!(rules.send.len(), SEND_RULES.len());
        assert_eq!(rules.recv.len(), RECV_RULES.len());
        for (data, rule) in rules.send.iter().zip(SEND_RULES) {
            assert_eq!(data.state, rule.state.name());
            assert_eq!(data.action, rule.action.name());
            assert_eq!(data.next, rule.next.name());
        }
        for (data, rule) in rules.recv.iter().zip(RECV_RULES) {
            assert_eq!(data.state, rule.state.name());
            assert_eq!(data.signal, rule.signal.name());
            assert_eq!(data.next, rule.next.name());
            assert_eq!(data.auto, rule.auto.map(SignalKind::name));
        }
    }

    #[test]
    fn recv_rules_agree_with_on_signal() {
        // RECV_RULES must reproduce on_signal's state transitions and
        // automatic responses for every (state, signal, initiator) triple.
        for state in SlotState::ALL {
            for kind in crate::signal::SignalKind::ALL {
                for initiator in [false, true] {
                    let mut s = slot_in(state, initiator);
                    let mut peer = TagSource::new(70);
                    let sig = match kind {
                        crate::signal::SignalKind::Open => Signal::Open {
                            medium: Medium::Audio,
                            desc: nm_desc(&mut peer),
                        },
                        crate::signal::SignalKind::Oack => Signal::Oack {
                            desc: nm_desc(&mut peer),
                        },
                        crate::signal::SignalKind::Close => Signal::Close,
                        crate::signal::SignalKind::CloseAck => Signal::CloseAck,
                        crate::signal::SignalKind::Describe => Signal::Describe {
                            desc: nm_desc(&mut peer),
                        },
                        crate::signal::SignalKind::Select => Signal::Select {
                            sel: Selector::not_sending(peer.next()),
                        },
                    };
                    let (expected_next, expected_auto) = state.on_receive(kind, initiator);
                    let (_event, auto) = s.on_signal(sig);
                    assert_eq!(
                        s.state(),
                        expected_next,
                        "receive {kind:?} in {state:?} (initiator={initiator})"
                    );
                    let auto_kinds: Vec<_> = auto.iter().map(Signal::kind_enum).collect();
                    assert_eq!(
                        auto_kinds,
                        expected_auto.into_iter().collect::<Vec<_>>(),
                        "auto response to {kind:?} in {state:?} (initiator={initiator})"
                    );
                }
            }
        }
    }
}
