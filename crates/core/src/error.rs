//! Error types for the media-control core.

use crate::slot::SlotState;
use std::fmt;

/// An attempted protocol action that is illegal in the current slot state.
///
/// Incoming signals are never errors (stale signals are tolerated and
/// reported as ignored, since FIFO channels can legitimately deliver
/// signals sent before the peer observed a state change); only *outgoing*
/// actions requested by goal objects or programs are validated strictly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The requested signal cannot be sent in the slot's current state.
    BadState {
        /// The attempted protocol action.
        action: &'static str,
        /// The slot state that forbids it.
        state: SlotState,
    },
    /// A selector was submitted that does not answer the slot's current
    /// peer descriptor, or picks a codec the descriptor does not offer.
    StaleSelector,
    /// An outgoing descriptor or selector violates a structural rule
    /// (e.g. a real codec answering a `noMedia` descriptor).
    InvalidRecord(&'static str),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::BadState { action, state } => {
                write!(f, "cannot {action} in slot state {state:?}")
            }
            ProtocolError::StaleSelector => {
                f.write_str("selector does not answer the current peer descriptor")
            }
            ProtocolError::InvalidRecord(why) => write!(f, "invalid record: {why}"),
        }
    }
}

impl std::error::Error for ProtocolError {}
