//! Declarative chaos schedules: seeded, phased fault sequences over named
//! boxes and links.
//!
//! A [`ChaosSchedule`] is a substrate-agnostic description of *correlated,
//! time-varying* failures — network partitions (bidirectional or
//! asymmetric), crash storms, bursty loss/delay spikes, and the heal
//! events that end them. The same schedule value is applied to the
//! discrete-event simulator (`ipmedia-netsim`, virtual time) and to the
//! tokio runtime (`ipmedia-rt`, wall clock), so a failure scenario
//! debugged under the simulator reproduces on deployed nodes.
//!
//! Determinism: a schedule is pure data plus a `seed`. Generators
//! ([`generate`]) derive every probabilistic choice from the seed with a
//! splitmix64 stream, and the substrates in turn derive their per-channel
//! fault PRNGs from `seed` — identical `(schedule, seed)` pairs yield
//! identical simulator outcomes.
//!
//! Minimization: when a `(schedule, seed)` pair makes an invariant
//! monitor flag a violation, [`minimize_schedule`] delta-debugs the phase
//! list down to a minimal still-failing subsequence, mirroring the model
//! checker's counterexample-ladder minimizers.

/// Which direction(s) of a box pair a partition cuts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Both directions are cut (a full partition).
    Both,
    /// Only traffic from the first named box to the second is cut.
    AToB,
    /// Only traffic from the second named box to the first is cut.
    BToA,
}

impl Direction {
    /// Per-direction block flags as `(block_a_to_b, block_b_to_a)`.
    pub fn blocks(self) -> (bool, bool) {
        match self {
            Direction::Both => (true, true),
            Direction::AToB => (true, false),
            Direction::BToA => (false, true),
        }
    }

    /// Short human-readable form used by [`ChaosSchedule::describe`].
    pub fn label(self) -> &'static str {
        match self {
            Direction::Both => "both",
            Direction::AToB => "a->b",
            Direction::BToA => "b->a",
        }
    }
}

/// One fault (or heal) action of a chaos phase.
#[derive(Debug, Clone, PartialEq)]
pub enum ChaosAction {
    /// Cut traffic between two named boxes in the given direction(s).
    /// Stays in force until a matching [`ChaosAction::Heal`].
    Partition {
        /// First box name.
        a: String,
        /// Second box name.
        b: String,
        /// Which direction(s) are cut.
        dir: Direction,
    },
    /// Remove any partition between two named boxes (order-insensitive).
    Heal {
        /// First box name.
        a: String,
        /// Second box name.
        b: String,
    },
    /// A bursty loss/delay spike on the link between two boxes: for
    /// `duration_ms`, traffic is subjected to the given drop/duplicate/
    /// reorder probabilities instead of the link's baseline plan. The
    /// burst expires on its own; no heal phase is needed.
    Burst {
        /// First box name.
        a: String,
        /// Second box name.
        b: String,
        /// Per-signal drop probability in `[0, 1]`.
        drop: f64,
        /// Per-signal duplicate probability in `[0, 1]`.
        duplicate: f64,
        /// Per-copy reorder-jitter probability in `[0, 1]`.
        reorder: f64,
        /// Upper bound on reorder jitter, in milliseconds.
        max_extra_delay_ms: u64,
        /// How long the burst lasts, in schedule milliseconds.
        duration_ms: u64,
    },
    /// Crash a named box, losing its inputs, for `down_ms`; the box
    /// restarts afterwards with its reliability layer re-armed.
    Crash {
        /// The box to crash.
        bx: String,
        /// How long the box stays down, in schedule milliseconds.
        down_ms: u64,
    },
}

impl ChaosAction {
    fn describe(&self) -> String {
        match self {
            ChaosAction::Partition { a, b, dir } => {
                format!("partition {a}<->{b} ({})", dir.label())
            }
            ChaosAction::Heal { a, b } => format!("heal {a}<->{b}"),
            ChaosAction::Burst {
                a,
                b,
                drop,
                duration_ms,
                ..
            } => format!("burst {a}<->{b} drop={drop:.2} for {duration_ms}ms"),
            ChaosAction::Crash { bx, down_ms } => format!("crash {bx} for {down_ms}ms"),
        }
    }
}

/// One phase of a schedule: an action injected at a schedule-relative
/// time offset (milliseconds from the start of the schedule).
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPhase {
    /// Offset from schedule start, in milliseconds.
    pub at_ms: u64,
    /// The fault or heal injected at that instant.
    pub action: ChaosAction,
}

/// A seeded, declarative sequence of chaos phases.
///
/// Times are schedule-relative milliseconds: the simulator maps them onto
/// virtual time, the runtime onto (possibly scaled) wall-clock time.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSchedule {
    /// Seed from which all probabilistic fault behavior derives.
    pub seed: u64,
    /// Phases, in injection order (kept sorted by `at_ms`).
    pub phases: Vec<ChaosPhase>,
}

fn norm<'a>(a: &'a str, b: &'a str) -> (&'a str, &'a str) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl ChaosSchedule {
    /// Empty schedule with the given seed.
    pub fn new(seed: u64) -> Self {
        ChaosSchedule {
            seed,
            phases: Vec::new(),
        }
    }

    fn push(mut self, at_ms: u64, action: ChaosAction) -> Self {
        self.phases.push(ChaosPhase { at_ms, action });
        self.phases.sort_by_key(|p| p.at_ms);
        self
    }

    /// Add a partition phase.
    pub fn partition(self, at_ms: u64, a: &str, b: &str, dir: Direction) -> Self {
        self.push(
            at_ms,
            ChaosAction::Partition {
                a: a.to_string(),
                b: b.to_string(),
                dir,
            },
        )
    }

    /// Add a heal phase for a partitioned pair.
    pub fn heal(self, at_ms: u64, a: &str, b: &str) -> Self {
        self.push(
            at_ms,
            ChaosAction::Heal {
                a: a.to_string(),
                b: b.to_string(),
            },
        )
    }

    /// Add a loss/delay burst phase.
    #[allow(clippy::too_many_arguments)]
    pub fn burst(
        self,
        at_ms: u64,
        a: &str,
        b: &str,
        drop: f64,
        duplicate: f64,
        reorder: f64,
        max_extra_delay_ms: u64,
        duration_ms: u64,
    ) -> Self {
        self.push(
            at_ms,
            ChaosAction::Burst {
                a: a.to_string(),
                b: b.to_string(),
                drop,
                duplicate,
                reorder,
                max_extra_delay_ms,
                duration_ms,
            },
        )
    }

    /// Add a crash phase.
    pub fn crash(self, at_ms: u64, bx: &str, down_ms: u64) -> Self {
        self.push(
            at_ms,
            ChaosAction::Crash {
                bx: bx.to_string(),
                down_ms,
            },
        )
    }

    /// The instant (schedule ms) after which no injected fault is active:
    /// the last heal, burst end, or crash restart. Returns `None` if some
    /// partition is never healed — such a schedule has no settle point
    /// and recovery objectives cannot be evaluated against it.
    pub fn settle_ms(&self) -> Option<u64> {
        let mut settle = 0u64;
        for (i, phase) in self.phases.iter().enumerate() {
            let end = match &phase.action {
                ChaosAction::Partition { a, b, .. } => {
                    let key = norm(a, b);
                    // Find the first heal of this pair at or after the cut.
                    let heal = self.phases[i..].iter().find(|p| {
                        matches!(&p.action, ChaosAction::Heal { a: ha, b: hb }
                            if norm(ha, hb) == key)
                    });
                    match heal {
                        Some(h) => h.at_ms,
                        None => return None,
                    }
                }
                ChaosAction::Heal { .. } => phase.at_ms,
                ChaosAction::Burst { duration_ms, .. } => phase.at_ms + duration_ms,
                ChaosAction::Crash { down_ms, .. } => phase.at_ms + down_ms,
            };
            settle = settle.max(end);
        }
        Some(settle)
    }

    /// True iff every partition phase has a matching later heal.
    pub fn is_healed(&self) -> bool {
        self.settle_ms().is_some()
    }

    /// One-line human-readable rendering, stable across runs; used in
    /// failure reports so any red run reproduces from the log.
    pub fn describe(&self) -> String {
        if self.phases.is_empty() {
            return format!("seed={} (empty schedule)", self.seed);
        }
        let parts: Vec<String> = self
            .phases
            .iter()
            .map(|p| format!("t={}ms {}", p.at_ms, p.action.describe()))
            .collect();
        format!("seed={} {}", self.seed, parts.join("; "))
    }
}

/// The topology a schedule generator draws targets from: the named boxes
/// and the links (adjacent box pairs) of a deployment.
#[derive(Debug, Clone)]
pub struct ChaosTopology {
    /// All box names.
    pub boxes: Vec<String>,
    /// Adjacent box pairs that carry channels.
    pub links: Vec<(String, String)>,
}

/// Families of generated schedules, each stressing a distinct failure
/// mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleFamily {
    /// One or two full partitions that heal before the deadline.
    PartitionHeal,
    /// Repeated one-way partitions alternating direction (gray failure).
    AsymmetricFlap,
    /// Several staggered crashes with overlapping down intervals.
    CrashStorm,
    /// Short windows of heavy loss, duplication, and reorder jitter.
    BurstLoss,
    /// A partition, a crash, and a burst overlapping.
    Mixed,
}

impl ScheduleFamily {
    /// Every family, in sweep order.
    pub const ALL: [ScheduleFamily; 5] = [
        ScheduleFamily::PartitionHeal,
        ScheduleFamily::AsymmetricFlap,
        ScheduleFamily::CrashStorm,
        ScheduleFamily::BurstLoss,
        ScheduleFamily::Mixed,
    ];

    /// Stable name used in bench records.
    pub fn name(self) -> &'static str {
        match self {
            ScheduleFamily::PartitionHeal => "partition_heal",
            ScheduleFamily::AsymmetricFlap => "asymmetric_flap",
            ScheduleFamily::CrashStorm => "crash_storm",
            ScheduleFamily::BurstLoss => "burst_loss",
            ScheduleFamily::Mixed => "mixed",
        }
    }
}

/// Splitmix64: the schedule generators' only entropy source, so a
/// `(family, seed, topology)` triple always yields the same schedule.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `lo..=hi`.
    fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next() % (hi - lo + 1)
    }

    /// Uniform percentage in `lo..=hi`, as a probability.
    #[allow(clippy::cast_precision_loss)] // values are < 100
    fn percent(&mut self, lo: u64, hi: u64) -> f64 {
        self.range(lo, hi) as f64 / 100.0
    }

    fn pick<'a, T>(&mut self, s: &'a [T]) -> &'a T {
        let i = usize::try_from(self.next() % s.len() as u64).expect("index fits usize");
        &s[i]
    }
}

/// Generate a seeded schedule of the given family over a topology.
///
/// All durations are conservative with respect to the default
/// reliability window (`ReliableConfig`: ~32 s of capped-backoff
/// retries), so a healed schedule is always recoverable: partitions heal
/// within ~8 s, crashes restart within ~2.5 s, bursts expire within
/// ~4 s.
pub fn generate(family: ScheduleFamily, seed: u64, topo: &ChaosTopology) -> ChaosSchedule {
    let mut rng = Mix(seed ^ 0x000C_4A05_u64.wrapping_mul(family as u64 + 1));
    let mut s = ChaosSchedule::new(seed);
    assert!(
        !topo.links.is_empty() && !topo.boxes.is_empty(),
        "chaos topology must name at least one box and one link"
    );
    match family {
        ScheduleFamily::PartitionHeal => {
            let n = rng.range(1, 2.min(topo.links.len() as u64));
            for _ in 0..n {
                let (a, b) = rng.pick(&topo.links).clone();
                let t0 = rng.range(500, 1_500);
                let dur = rng.range(3_000, 8_000);
                s = s
                    .partition(t0, &a, &b, Direction::Both)
                    .heal(t0 + dur, &a, &b);
            }
        }
        ScheduleFamily::AsymmetricFlap => {
            let (a, b) = rng.pick(&topo.links).clone();
            let mut t = rng.range(400, 1_000);
            let flaps = rng.range(2, 3);
            for i in 0..flaps {
                let dir = if i % 2 == 0 {
                    Direction::AToB
                } else {
                    Direction::BToA
                };
                let dur = rng.range(800, 2_000);
                s = s.partition(t, &a, &b, dir).heal(t + dur, &a, &b);
                t += dur + rng.range(300, 900);
            }
        }
        ScheduleFamily::CrashStorm => {
            let n = rng.range(2, 4.min(topo.boxes.len() as u64).max(2));
            let mut t = rng.range(400, 1_000);
            for _ in 0..n {
                let bx = rng.pick(&topo.boxes).clone();
                let down = rng.range(500, 2_500);
                s = s.crash(t, &bx, down);
                t += rng.range(400, 1_000);
            }
        }
        ScheduleFamily::BurstLoss => {
            let n = rng.range(1, 2);
            for _ in 0..n {
                let (a, b) = rng.pick(&topo.links).clone();
                let t0 = rng.range(400, 1_200);
                let drop = rng.percent(30, 70);
                let dur = rng.range(1_500, 4_000);
                s = s.burst(t0, &a, &b, drop, 0.10, 0.20, 150, dur);
            }
        }
        ScheduleFamily::Mixed => {
            let (a, b) = rng.pick(&topo.links).clone();
            let t0 = rng.range(500, 1_200);
            let pdur = rng.range(2_500, 6_000);
            s = s
                .partition(t0, &a, &b, Direction::Both)
                .heal(t0 + pdur, &a, &b);
            let bx = rng.pick(&topo.boxes).clone();
            s = s.crash(t0 + rng.range(200, 800), &bx, rng.range(500, 2_000));
            let (ba, bb) = rng.pick(&topo.links).clone();
            s = s.burst(
                t0 + pdur + rng.range(100, 500),
                &ba,
                &bb,
                rng.percent(20, 50),
                0.10,
                0.20,
                150,
                rng.range(1_000, 2_500),
            );
        }
    }
    s
}

/// Delta-debug a failing schedule down to a minimal still-failing phase
/// list, mirroring the model checker's counterexample minimizers.
///
/// `still_fails` re-runs the system under a candidate schedule and
/// reports whether the original violation persists. Greedy one-at-a-time
/// removal to a fixpoint: the result is 1-minimal (removing any single
/// remaining phase makes the failure disappear), and deterministic given
/// a deterministic predicate.
pub fn minimize_schedule<F>(schedule: &ChaosSchedule, mut still_fails: F) -> ChaosSchedule
where
    F: FnMut(&ChaosSchedule) -> bool,
{
    let mut cur = schedule.clone();
    let mut changed = true;
    while changed {
        changed = false;
        let mut i = cur.phases.len();
        while i > 0 {
            i -= 1;
            if cur.phases.len() == 1 {
                break;
            }
            let mut cand = cur.clone();
            cand.phases.remove(i);
            if still_fails(&cand) {
                cur = cand;
                changed = true;
            }
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> ChaosTopology {
        ChaosTopology {
            boxes: vec!["l".into(), "s0".into(), "r".into()],
            links: vec![("l".into(), "s0".into()), ("s0".into(), "r".into())],
        }
    }

    #[test]
    fn settle_is_last_fault_end() {
        let s = ChaosSchedule::new(7)
            .partition(500, "l", "s0", Direction::Both)
            .heal(4_500, "l", "s0")
            .crash(1_000, "r", 2_000)
            .burst(2_000, "s0", "r", 0.5, 0.1, 0.2, 150, 1_000);
        assert_eq!(s.settle_ms(), Some(4_500));
        assert!(s.is_healed());
    }

    #[test]
    fn unhealed_partition_has_no_settle() {
        let s = ChaosSchedule::new(7).partition(500, "l", "s0", Direction::Both);
        assert_eq!(s.settle_ms(), None);
        assert!(!s.is_healed());
        // A heal of a *different* pair does not count.
        let s = s.heal(9_000, "s0", "r");
        assert_eq!(s.settle_ms(), None);
    }

    #[test]
    fn heal_matches_pair_order_insensitively() {
        let s = ChaosSchedule::new(1)
            .partition(100, "l", "s0", Direction::AToB)
            .heal(900, "s0", "l");
        assert_eq!(s.settle_ms(), Some(900));
    }

    #[test]
    fn generate_is_deterministic_and_healed() {
        for family in ScheduleFamily::ALL {
            for seed in 0..20 {
                let a = generate(family, seed, &topo());
                let b = generate(family, seed, &topo());
                assert_eq!(a, b, "family {} seed {seed}", family.name());
                assert!(a.is_healed(), "family {} seed {seed}", family.name());
                assert!(!a.phases.is_empty());
                let settle = a.settle_ms().unwrap();
                assert!(
                    settle <= 20_000,
                    "settle {settle} too late for reliability window"
                );
            }
        }
    }

    #[test]
    fn phases_stay_sorted() {
        let s = ChaosSchedule::new(0)
            .heal(5_000, "l", "s0")
            .partition(500, "l", "s0", Direction::Both)
            .crash(2_000, "r", 100);
        let times: Vec<u64> = s.phases.iter().map(|p| p.at_ms).collect();
        assert_eq!(times, vec![500, 2_000, 5_000]);
    }

    #[test]
    fn minimize_reaches_one_minimal_subset() {
        // Failure iff the schedule still contains the unhealed partition
        // of (l, s0): everything else is noise the minimizer must strip.
        let noisy = ChaosSchedule::new(3)
            .crash(100, "r", 200)
            .partition(500, "l", "s0", Direction::Both)
            .burst(700, "s0", "r", 0.5, 0.1, 0.2, 150, 500)
            .crash(900, "s0", 300);
        let fails = |s: &ChaosSchedule| {
            s.phases.iter().any(|p| {
                matches!(&p.action, ChaosAction::Partition { a, b, .. }
                    if (a == "l" && b == "s0") || (a == "s0" && b == "l"))
            }) && !s.is_healed()
        };
        assert!(fails(&noisy));
        let min = minimize_schedule(&noisy, fails);
        assert_eq!(min.phases.len(), 1);
        assert!(matches!(
            &min.phases[0].action,
            ChaosAction::Partition { a, b, .. } if a == "l" && b == "s0"
        ));
    }

    #[test]
    fn describe_names_every_phase() {
        let s = ChaosSchedule::new(42)
            .partition(500, "l", "s0", Direction::AToB)
            .heal(2_500, "l", "s0");
        let d = s.describe();
        assert!(d.contains("seed=42"));
        assert!(d.contains("t=500ms partition l<->s0 (a->b)"));
        assert!(d.contains("t=2500ms heal l<->s0"));
    }
}
