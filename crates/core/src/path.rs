//! Signaling-path semantics (paper §V).
//!
//! A *signaling path* is a maximal chain of tunnels and flowlinks; each path
//! corresponds to an actual or potential media channel between the path
//! endpoints. Correctness is specified per path, in temporal logic, in terms
//! of two distinguished path states:
//!
//! * `bothClosed` — both endpoint slots closed, no possibility of media flow;
//! * `bothFlowing` — both endpoint slots flowing, media equal, and the
//!   implementation state correctly reflecting the endpoints' mute choices.
//!
//! Classifying paths by the goals at their two ends (six types up to
//! symmetry) gives the specification table of §V, reproduced by
//! [`PathType::spec`]. The model checker (`ipmedia-mck`) verifies these
//! formulas over the actual implementation; simulations and tests use the
//! state predicates directly.
//!
//! ### A note on the paper's `Lenabled`/`Renabled`
//!
//! §V defines `Lenabled = ¬LmuteIn ∧ ¬RmuteOut` and reads it as readiness
//! for right-to-left packets, while §VI-C describes `Lenabled` as set when
//! the *left* endpoint sends a real selector (which enables left-to-right
//! flow). The two sections disagree on which direction carries the `L`
//! label, but describe the same pair of per-direction history variables. We
//! avoid the ambiguity with direction-explicit names: [`PathEnds::ltr_enabled`]
//! (left endpoint transmits) and [`PathEnds::rtl_enabled`].

use crate::slot::Slot;
use std::fmt;

/// The kind of goal controlling one end of a signaling path. (A genuine
/// endpoint's user agent behaves as an `openSlot`/`holdSlot`/`closeSlot`
/// depending on the user's current intent; §V.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EndGoal {
    /// The end wants media flow (`openSlot`-like intent).
    Open,
    /// The end wants the path closed (`closeSlot`-like intent).
    Close,
    /// The end wants the path open but parked (`holdSlot`-like intent).
    Hold,
}

/// The six path types of §V, up to symmetry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PathType {
    /// Both ends closing.
    CloseClose,
    /// One end closing, one holding.
    CloseHold,
    /// One end closing, one opening.
    CloseOpen,
    /// Both ends opening.
    OpenOpen,
    /// One end opening, one holding.
    OpenHold,
    /// Both ends holding.
    HoldHold,
}

/// The temporal specification a path must satisfy (§V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PathSpec {
    /// `◇□ bothClosed` — eventually the path stays closed forever.
    EventuallyAlwaysBothClosed,
    /// `◇□ ¬bothFlowing` — eventually there is never media flow.
    EventuallyAlwaysNotBothFlowing,
    /// `□◇ bothFlowing` — the path always eventually returns to flowing
    /// (a recurrence property, robust to `modify` perturbations).
    AlwaysEventuallyBothFlowing,
    /// `(◇□ bothClosed) ∨ (□◇ bothFlowing)` — hold/hold paths settle into
    /// whichever state the path had when it was formed.
    ClosedOrFlowing,
}

impl PathType {
    /// Classify a path by its two end goals (order-insensitive).
    pub fn of(a: EndGoal, b: EndGoal) -> PathType {
        use EndGoal::{Close, Hold, Open};
        match (a.min_k(), b.min_k()) {
            _ if (a, b) == (Close, Close) => PathType::CloseClose,
            _ if matches!((a, b), (Close, Hold) | (Hold, Close)) => PathType::CloseHold,
            _ if matches!((a, b), (Close, Open) | (Open, Close)) => PathType::CloseOpen,
            _ if (a, b) == (Open, Open) => PathType::OpenOpen,
            _ if matches!((a, b), (Open, Hold) | (Hold, Open)) => PathType::OpenHold,
            _ => PathType::HoldHold,
        }
    }

    /// The specification table of §V.
    pub fn spec(self) -> PathSpec {
        match self {
            PathType::CloseClose | PathType::CloseHold => PathSpec::EventuallyAlwaysBothClosed,
            PathType::CloseOpen => PathSpec::EventuallyAlwaysNotBothFlowing,
            PathType::OpenOpen | PathType::OpenHold => PathSpec::AlwaysEventuallyBothFlowing,
            PathType::HoldHold => PathSpec::ClosedOrFlowing,
        }
    }

    /// All six types, for exhaustive verification campaigns (§VIII-A).
    pub fn all() -> [PathType; 6] {
        [
            PathType::CloseClose,
            PathType::CloseHold,
            PathType::CloseOpen,
            PathType::OpenOpen,
            PathType::OpenHold,
            PathType::HoldHold,
        ]
    }

    /// The two end goals of this path type.
    pub fn ends(self) -> (EndGoal, EndGoal) {
        match self {
            PathType::CloseClose => (EndGoal::Close, EndGoal::Close),
            PathType::CloseHold => (EndGoal::Close, EndGoal::Hold),
            PathType::CloseOpen => (EndGoal::Close, EndGoal::Open),
            PathType::OpenOpen => (EndGoal::Open, EndGoal::Open),
            PathType::OpenHold => (EndGoal::Open, EndGoal::Hold),
            PathType::HoldHold => (EndGoal::Hold, EndGoal::Hold),
        }
    }
}

impl EndGoal {
    fn min_k(self) -> u8 {
        match self {
            EndGoal::Close => 0,
            EndGoal::Open => 1,
            EndGoal::Hold => 2,
        }
    }
}

impl fmt::Display for PathType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PathType::CloseClose => "close–close",
            PathType::CloseHold => "close–hold",
            PathType::CloseOpen => "close–open",
            PathType::OpenOpen => "open–open",
            PathType::OpenHold => "open–hold",
            PathType::HoldHold => "hold–hold",
        };
        f.write_str(s)
    }
}

/// The two endpoint slots of a signaling path, for evaluating path states.
#[derive(Debug, Clone, Copy)]
pub struct PathEnds<'a> {
    /// The path's left endpoint slot.
    pub left: &'a Slot,
    /// The path's right endpoint slot.
    pub right: &'a Slot,
}

impl<'a> PathEnds<'a> {
    /// View over the path's two endpoint slots.
    pub fn new(left: &'a Slot, right: &'a Slot) -> Self {
        Self { left, right }
    }

    /// `bothClosed ≜ Lclosed ∧ Rclosed` (§V).
    pub fn both_closed(&self) -> bool {
        self.left.is_closed() && self.right.is_closed()
    }

    /// `bothFlowing` in the history-variable form used for model checking
    /// (§VIII-A): both ends flowing with equal media, each end has most
    /// recently received the descriptor most recently sent by the other,
    /// and each end has most recently received a selector responding to its
    /// own most recent descriptor.
    pub fn both_flowing(&self) -> bool {
        if !(self.left.is_flowing() && self.right.is_flowing()) {
            return false;
        }
        if self.left.medium() != self.right.medium() {
            return false;
        }
        let (l, r) = (self.left, self.right);
        let descs_synced = match (l.peer_desc(), r.sent_desc(), r.peer_desc(), l.sent_desc()) {
            (Some(lr), Some(rs), Some(rr), Some(ls)) => lr.tag == rs.tag && rr.tag == ls.tag,
            _ => false,
        };
        if !descs_synced {
            return false;
        }
        let sels_synced = match (l.peer_sel(), l.sent_desc(), r.peer_sel(), r.sent_desc()) {
            (Some(lsel), Some(ld), Some(rsel), Some(rd)) => {
                lsel.answers == ld.tag && rsel.answers == rd.tag
            }
            _ => false,
        };
        sels_synced
    }

    /// Left-to-right transmission enabled: the left endpoint is flowing and
    /// has sent a real selector answering the right's current descriptor.
    /// Equals `¬LmuteOut ∧ ¬RmuteIn` once the path has converged (§V).
    pub fn ltr_enabled(&self) -> bool {
        self.left.tx_route().is_some()
    }

    /// Right-to-left transmission enabled (`¬RmuteOut ∧ ¬LmuteIn`).
    pub fn rtl_enabled(&self) -> bool {
        self.right.tx_route().is_some()
    }

    /// The §V user-level form of `bothFlowing`: checks that the enabled
    /// history variables correctly reflect the endpoints' mute choices.
    pub fn both_flowing_with_mutes(
        &self,
        l_mute_in: bool,
        l_mute_out: bool,
        r_mute_in: bool,
        r_mute_out: bool,
    ) -> bool {
        self.both_flowing()
            && (self.ltr_enabled() == (!l_mute_out && !r_mute_in))
            && (self.rtl_enabled() == (!r_mute_out && !l_mute_in))
    }
}

/// One signaling channel in a scenario topology, between two named boxes.
///
/// Direction matters for bookkeeping only (the `from` box initiates channel
/// setup); signaling paths treat channels as undirected edges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelLink {
    /// Initiating box.
    pub from: String,
    /// Accepting box.
    pub to: String,
    /// Number of tunnels (hence slot pairs) the channel carries.
    pub tunnels: u16,
}

/// A static signaling-graph topology: the boxes of a scenario and the
/// channels between them (Fig. 1's configurations, viewed as a graph).
///
/// Signaling paths are maximal chains of tunnels and flowlinks through this
/// graph, so its shape determines which paths can exist; the analyzer's
/// well-formedness pass checks it for dangling channels and tunnel-model
/// violations.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Topology {
    /// Declared boxes.
    pub boxes: Vec<String>,
    /// Declared channels.
    pub links: Vec<ChannelLink>,
}

impl Topology {
    /// New empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a box.
    pub fn with_box(mut self, name: impl Into<String>) -> Self {
        self.boxes.push(name.into());
        self
    }

    /// Declare a channel from `from` to `to` with `tunnels` tunnels.
    pub fn with_link(
        mut self,
        from: impl Into<String>,
        to: impl Into<String>,
        tunnels: u16,
    ) -> Self {
        self.links.push(ChannelLink {
            from: from.into(),
            to: to.into(),
            tunnels,
        });
        self
    }

    /// True iff `name` is a declared box.
    pub fn has_box(&self, name: &str) -> bool {
        self.boxes.iter().any(|b| b == name)
    }

    /// Degree of a box in the undirected channel graph.
    pub fn degree(&self, name: &str) -> usize {
        self.links
            .iter()
            .filter(|l| l.from == name || l.to == name)
            .count()
    }

    /// The link between boxes `a` and `b`, in either orientation.
    pub fn link_between(&self, a: &str, b: &str) -> Option<&ChannelLink> {
        self.links
            .iter()
            .find(|l| (l.from == a && l.to == b) || (l.from == b && l.to == a))
    }

    /// Boxes adjacent to `name` in the undirected channel graph, in link
    /// declaration order.
    pub fn neighbors(&self, name: &str) -> Vec<&str> {
        self.links
            .iter()
            .filter_map(|l| {
                if l.from == name {
                    Some(l.to.as_str())
                } else if l.to == name {
                    Some(l.from.as_str())
                } else {
                    None
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Codec, Medium};
    use crate::descriptor::{Descriptor, MediaAddr, Selector, TagSource};

    #[test]
    fn path_type_classification_is_symmetric() {
        use EndGoal::*;
        assert_eq!(PathType::of(Close, Hold), PathType::of(Hold, Close));
        assert_eq!(PathType::of(Open, Close), PathType::CloseOpen);
        assert_eq!(PathType::of(Hold, Hold), PathType::HoldHold);
        assert_eq!(PathType::of(Open, Open), PathType::OpenOpen);
        assert_eq!(PathType::of(Open, Hold), PathType::OpenHold);
        assert_eq!(PathType::of(Close, Close), PathType::CloseClose);
    }

    #[test]
    fn spec_table_matches_section_v() {
        assert_eq!(
            PathType::CloseClose.spec(),
            PathSpec::EventuallyAlwaysBothClosed
        );
        assert_eq!(
            PathType::CloseHold.spec(),
            PathSpec::EventuallyAlwaysBothClosed
        );
        assert_eq!(
            PathType::CloseOpen.spec(),
            PathSpec::EventuallyAlwaysNotBothFlowing
        );
        assert_eq!(
            PathType::OpenOpen.spec(),
            PathSpec::AlwaysEventuallyBothFlowing
        );
        assert_eq!(
            PathType::OpenHold.spec(),
            PathSpec::AlwaysEventuallyBothFlowing
        );
        assert_eq!(PathType::HoldHold.spec(), PathSpec::ClosedOrFlowing);
    }

    #[test]
    fn all_six_types_enumerated() {
        let all = PathType::all();
        assert_eq!(all.len(), 6);
        for t in all {
            let (a, b) = t.ends();
            assert_eq!(PathType::of(a, b), t);
        }
    }

    /// Build a converged direct path between two endpoint slots.
    fn converged_pair() -> (Slot, Slot) {
        let mut l = Slot::new(true);
        let mut r = Slot::new(false);
        let mut lt = TagSource::new(1);
        let mut rt = TagSource::new(2);
        let dl = Descriptor::media(
            lt.next(),
            MediaAddr::v4(10, 0, 0, 1, 4000),
            vec![Codec::G711],
        );
        let open = l.send_open(Medium::Audio, dl.clone()).unwrap();
        r.on_signal(open);
        let dr = Descriptor::media(
            rt.next(),
            MediaAddr::v4(10, 0, 0, 2, 5000),
            vec![Codec::G711],
        );
        let [oack, select] = r
            .accept(
                dr.clone(),
                Selector::sending(dl.tag, MediaAddr::v4(10, 0, 0, 2, 5000), Codec::G711),
            )
            .unwrap();
        l.on_signal(oack);
        l.on_signal(select);
        let sig = l
            .send_select(Selector::sending(
                dr.tag,
                MediaAddr::v4(10, 0, 0, 1, 4000),
                Codec::G711,
            ))
            .unwrap();
        r.on_signal(sig);
        (l, r)
    }

    #[test]
    fn converged_path_is_both_flowing() {
        let (l, r) = converged_pair();
        let ends = PathEnds::new(&l, &r);
        assert!(ends.both_flowing());
        assert!(!ends.both_closed());
        assert!(ends.ltr_enabled());
        assert!(ends.rtl_enabled());
        assert!(ends.both_flowing_with_mutes(false, false, false, false));
    }

    #[test]
    fn closed_path_is_both_closed() {
        let l = Slot::new(true);
        let r = Slot::new(false);
        let ends = PathEnds::new(&l, &r);
        assert!(ends.both_closed());
        assert!(!ends.both_flowing());
    }

    #[test]
    fn mid_handshake_is_neither() {
        let mut l = Slot::new(true);
        let r = Slot::new(false);
        let mut lt = TagSource::new(1);
        l.send_open(Medium::Audio, Descriptor::no_media(lt.next()))
            .unwrap();
        let ends = PathEnds::new(&l, &r);
        assert!(!ends.both_closed());
        assert!(!ends.both_flowing());
    }

    #[test]
    fn unanswered_redescribe_breaks_both_flowing() {
        let (mut l, r) = converged_pair();
        let mut lt = TagSource::new(3);
        // L re-describes; until R's fresh selector arrives, the path is out
        // of the bothFlowing state (the recurrence property's excursion).
        let _ = l.send_describe(Descriptor::no_media(lt.next())).unwrap();
        let ends = PathEnds::new(&l, &r);
        assert!(!ends.both_flowing());
    }

    #[test]
    fn mute_mismatch_fails_user_form() {
        let (l, r) = converged_pair();
        let ends = PathEnds::new(&l, &r);
        // Both directions enabled, but claim L mutes out: inconsistent.
        assert!(!ends.both_flowing_with_mutes(false, true, false, false));
    }
}
