//! Signals of the media-control protocol and channel meta-signals
//! (paper §III-A, §VI-B).
//!
//! The protocol operates separately in each tunnel of each signaling
//! channel; [`Signal`] values travel inside one tunnel. [`MetaSignal`]s
//! refer to the signaling channel as a whole (setup, teardown, availability)
//! and can affect every tunnel within it.

use crate::codec::Medium;
use crate::descriptor::{Descriptor, Selector};
use crate::ids::TunnelId;
use std::fmt;

/// A media-control signal within one tunnel (protocol of Fig. 9).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Signal {
    /// Attempt to open a media channel: carries the requested medium and a
    /// descriptor of the opener as a receiver of media.
    Open {
        /// The requested medium.
        medium: Medium,
        /// The opener's self-description as a receiver.
        desc: Descriptor,
    },
    /// Affirmative response to `Open`: carries a descriptor of the acceptor
    /// as a receiver of media.
    Oack {
        /// The acceptor's self-description as a receiver.
        desc: Descriptor,
    },
    /// Close the media channel (also plays the role of *reject*). Must be
    /// acknowledged by `CloseAck`.
    Close,
    /// Acknowledgement of `Close`.
    CloseAck,
    /// A new self-description of this end as a receiver; may be sent at any
    /// time after `Oack` has been sent or received. The receiver must
    /// respond with a `Select`.
    Describe {
        /// The new self-description.
        desc: Descriptor,
    },
    /// Declaration of sending intent, answering a previously received
    /// descriptor. May be sent at any time; signals in the two directions
    /// of a tunnel do not constrain each other (§VI-C).
    Select {
        /// The sending-intent declaration.
        sel: Selector,
    },
}

/// The six signal classes of the protocol, without payloads.
///
/// This is the alphabet of the Fig.-9 protocol FSM: the slot transition
/// tables in [`crate::slot`] and the static analyzer (`ipmedia-analyze`)
/// are indexed by it, so protocol knowledge has one source of truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SignalKind {
    /// `open` — attempt to open a media channel.
    Open,
    /// `oack` — affirmative response to `open`.
    Oack,
    /// `close` — close (or reject) the media channel.
    Close,
    /// `closeack` — acknowledgement of `close`.
    CloseAck,
    /// `describe` — a new self-description as a receiver.
    Describe,
    /// `select` — declaration of sending intent.
    Select,
}

impl SignalKind {
    /// Every signal class, in protocol order.
    pub const ALL: [SignalKind; 6] = [
        SignalKind::Open,
        SignalKind::Oack,
        SignalKind::Close,
        SignalKind::CloseAck,
        SignalKind::Describe,
        SignalKind::Select,
    ];

    /// Short protocol name, as used in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            SignalKind::Open => "open",
            SignalKind::Oack => "oack",
            SignalKind::Close => "close",
            SignalKind::CloseAck => "closeack",
            SignalKind::Describe => "describe",
            SignalKind::Select => "select",
        }
    }
}

impl fmt::Display for SignalKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl Signal {
    /// The payload-free class of this signal.
    pub fn kind_enum(&self) -> SignalKind {
        match self {
            Signal::Open { .. } => SignalKind::Open,
            Signal::Oack { .. } => SignalKind::Oack,
            Signal::Close => SignalKind::Close,
            Signal::CloseAck => SignalKind::CloseAck,
            Signal::Describe { .. } => SignalKind::Describe,
            Signal::Select { .. } => SignalKind::Select,
        }
    }

    /// Short protocol name, as used in the paper's figures.
    pub fn kind(&self) -> &'static str {
        self.kind_enum().name()
    }
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Signal::Open { medium, desc } => write!(f, "open({medium}, {desc})"),
            Signal::Oack { desc } => write!(f, "oack({desc})"),
            Signal::Close => f.write_str("close"),
            Signal::CloseAck => f.write_str("closeack"),
            Signal::Describe { desc } => write!(f, "describe({desc})"),
            Signal::Select { sel } => write!(f, "select({sel})"),
        }
    }
}

/// Availability of the far endpoint of a signaling channel, reported by
/// meta-signals during channel setup (§III-A; used by Click-to-Dial, Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Availability {
    /// The far endpoint is reachable and willing.
    Available,
    /// The far endpoint is unreachable or declined.
    Unavailable,
}

/// A meta-signal: refers to the signaling channel as a whole.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MetaSignal {
    /// The channel has been set up and is usable.
    ChannelUp,
    /// The intended far endpoint is available / unavailable.
    Peer(Availability),
    /// The channel is being destroyed; destroys all its tunnels and slots.
    Teardown,
    /// Application-level notification carried on the signaling channel but
    /// outside any tunnel (e.g. the prepaid-card resource V reporting that
    /// the user has paid, §IV-B).
    App(AppEvent),
}

impl MetaSignal {
    /// Stable class name of this meta-signal, for observers and traces.
    pub fn kind(&self) -> &'static str {
        match self {
            MetaSignal::ChannelUp => "channel_up",
            MetaSignal::Peer(Availability::Available) => "peer_available",
            MetaSignal::Peer(Availability::Unavailable) => "peer_unavailable",
            MetaSignal::Teardown => "teardown",
            MetaSignal::App(_) => "app",
        }
    }
}

/// Application-level events exchanged between cooperating boxes as
/// meta-signals. The set is open-ended; these cover the paper's scenarios.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AppEvent {
    /// Prepaid funds verified; reconnect the caller (V → PC, Fig. 3).
    FundsVerified,
    /// Instruct a media server how to mix inputs (conference partial muting,
    /// §IV-B): standardized meta-signals to the bridge, JSR-309 style.
    MixMatrix(Vec<MixRow>),
    /// Collaborative-television transport control applied to a whole
    /// signaling channel (all tunnels / media channels at once, Fig. 8).
    MovieControl(MovieCommand),
    /// Free-form event for application extensions and tests.
    Custom(String),
}

/// One row of a conference mixing matrix: what participant `output` hears is
/// the sum of `hears`, each scaled by a gain in percent (100 = unity,
/// 30 ≈ whisper).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MixRow {
    /// The participant whose output this row defines.
    pub output: u16,
    /// `(participant, gain-percent)` pairs summed into the output.
    pub hears: Vec<(u16, u8)>,
}

/// Transport control for a shared movie (collaborative TV, Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MovieCommand {
    /// Resume playback.
    Play,
    /// Pause playback.
    Pause,
    /// Seek to an absolute time point, in seconds.
    Seek(u32),
}

/// A message on a signaling channel: either a tunnel signal (addressed to a
/// tunnel, hence to the slot at each end) or a channel-wide meta-signal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ChannelMsg {
    /// A protocol signal addressed to one tunnel.
    Tunnel {
        /// The tunnel (hence slot pair) addressed.
        tunnel: TunnelId,
        /// The signal itself.
        signal: Signal,
    },
    /// A channel-wide meta-signal.
    Meta(MetaSignal),
}

impl fmt::Display for ChannelMsg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelMsg::Tunnel { tunnel, signal } => write!(f, "{tunnel}:{signal}"),
            ChannelMsg::Meta(m) => write!(f, "meta:{m:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::{DescTag, Descriptor};

    #[test]
    fn signal_kinds_match_paper_names() {
        let d = Descriptor::no_media(DescTag {
            origin: 1,
            generation: 0,
        });
        assert_eq!(
            Signal::Open {
                medium: Medium::Audio,
                desc: d.clone()
            }
            .kind(),
            "open"
        );
        assert_eq!(Signal::Oack { desc: d.clone() }.kind(), "oack");
        assert_eq!(Signal::Close.kind(), "close");
        assert_eq!(Signal::CloseAck.kind(), "closeack");
        assert_eq!(Signal::Describe { desc: d }.kind(), "describe");
    }

    #[test]
    fn channel_msg_display_includes_tunnel() {
        let m = ChannelMsg::Tunnel {
            tunnel: TunnelId(3),
            signal: Signal::Close,
        };
        assert_eq!(m.to_string(), "tun3:close");
    }
}
