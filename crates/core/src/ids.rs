//! Identifiers for the entities of the descriptive model (paper §III-A).
//!
//! The model is a graph of *boxes* (peer modules involved in media control)
//! connected by *signaling channels*. Each channel is statically partitioned
//! into *tunnels*, and the endpoint of a tunnel at a box is a *slot*.

use std::fmt;

/// Identity of a box: a peer module involved in media control.
///
/// A box may be a physical component (user device, application server, media
/// resource) or a virtual module running inside one; the model treats all of
/// them uniformly (paper §III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BoxId(pub u32);

/// Identity of a signaling channel: a two-way, FIFO, reliable connection
/// between two boxes (typically TCP between physical components, software
/// queues within one).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId(pub u32);

/// Index of a tunnel within its signaling channel. Each tunnel provides a
/// separate two-way signaling capability controlling one media channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TunnelId(pub u16);

/// Identity of a slot within a box: the protocol endpoint of one tunnel.
///
/// Slot ids are local to their box; `(BoxId, SlotId)` is globally unique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotId(pub u16);

/// Globally unique reference to a slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SlotRef {
    /// The box owning the slot.
    pub box_id: BoxId,
    /// The slot, local to its box.
    pub slot: SlotId,
}

impl SlotRef {
    /// Reference to `slot` within `box_id`.
    pub fn new(box_id: BoxId, slot: SlotId) -> Self {
        Self { box_id, slot }
    }
}

impl fmt::Display for BoxId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "box{}", self.0)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.0)
    }
}

impl fmt::Display for TunnelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tun{}", self.0)
    }
}

impl fmt::Display for SlotId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slot{}", self.0)
    }
}

impl fmt::Display for SlotRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.box_id, self.slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn slot_ref_identity() {
        let a = SlotRef::new(BoxId(1), SlotId(2));
        let b = SlotRef::new(BoxId(1), SlotId(2));
        let c = SlotRef::new(BoxId(1), SlotId(3));
        assert_eq!(a, b);
        assert_ne!(a, c);
        let set: HashSet<_> = [a, b, c].into_iter().collect();
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn display_formats() {
        assert_eq!(BoxId(7).to_string(), "box7");
        assert_eq!(SlotRef::new(BoxId(1), SlotId(0)).to_string(), "box1.slot0");
        assert_eq!(ChannelId(3).to_string(), "ch3");
        assert_eq!(TunnelId(9).to_string(), "tun9");
    }
}
