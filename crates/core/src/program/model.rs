//! Declarative mirror models of box programs (paper §IV-A), consumed by
//! the static analyzer (`ipmedia-analyze`).
//!
//! An [`AppLogic`](super::AppLogic) implementation is arbitrary Rust, which
//! no static pass can see through. A [`ProgramModel`] is the same program
//! written the way the paper draws it (Fig. 6): a finite set of named
//! states, each annotated with the goals that hold while the program dwells
//! there (§IV-A), and transitions triggered by meta-events. Shipping the
//! model next to the `AppLogic` keeps the checkable artifact and the
//! executable artifact side by side; the analyzer exhaustively checks the
//! model, and `mck` checks the executable, so the two tools complement
//! rather than duplicate each other.
//!
//! Names are plain strings so models can also be parsed from serialized
//! text (the `ipmedia-lint` CLI accepts `.ipm` files).

use crate::goal::GoalKind;
use crate::path::Topology;
use crate::slot::SlotAction;
use std::collections::BTreeSet;
use std::fmt;

/// A slot declared by a program model, optionally bound to one of the
/// program's signaling channels (slots ride on a channel's tunnels).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotDecl {
    /// Name of the slot, unique within the program (e.g. `"callee"`).
    pub name: String,
    /// Channel the slot rides on, if declared. A slot with no channel is
    /// bound by the environment (e.g. handed over at `ChannelUp`).
    pub channel: Option<String>,
}

/// A declarative finite-state model of one box program.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProgramModel {
    /// Program name (matches the example / `AppLogic` it mirrors).
    pub name: String,
    /// Name of the initial state; must name an entry of `states`.
    pub initial: String,
    /// Slots the program controls.
    pub slots: Vec<SlotDecl>,
    /// Signaling channels the program opens or receives.
    pub channels: Vec<String>,
    /// Application timers the program arms.
    pub timers: Vec<String>,
    /// The program's states, in declaration order.
    pub states: Vec<StateModel>,
}

/// One state of a [`ProgramModel`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct StateModel {
    /// State name, unique within the program.
    pub name: String,
    /// Whether the program may legitimately rest here forever (Fig. 6's
    /// "done" states). Termination lints treat non-final states without
    /// outgoing transitions as dead ends.
    pub is_final: bool,
    /// Goal annotations that hold while the program dwells here (§IV-A).
    pub goals: Vec<GoalAnnotation>,
    /// Outgoing transitions.
    pub transitions: Vec<TransitionModel>,
}

/// A goal annotation: one paper primitive applied to one slot (or two,
/// for `flowLink`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoalAnnotation {
    /// Which primitive.
    pub kind: GoalKind,
    /// The slot name(s) the goal claims; two entries iff `kind` is
    /// [`GoalKind::FlowLink`].
    pub slots: Vec<String>,
}

/// A transition of a [`StateModel`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransitionModel {
    /// The event that fires the transition.
    pub trigger: ModelTrigger,
    /// Target state name.
    pub to: String,
    /// Effects executed when the transition fires, in order.
    pub effects: Vec<ModelEffect>,
}

/// Events a model transition can be triggered by — the meta-event alphabet
/// of §IV-A (programs see meta-signals and slot-state predicates, never raw
/// media signals).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelTrigger {
    /// The box has been started.
    Start,
    /// The named signaling channel came up.
    ChannelUp(String),
    /// The named signaling channel went down.
    ChannelDown(String),
    /// The far end of the named channel reported available.
    PeerAvailable(String),
    /// The far end of the named channel reported unavailable.
    PeerUnavailable(String),
    /// An open arrived on the named slot (`isOpened` became true).
    SlotOpened(String),
    /// The named slot started flowing (`isFlowing` became true).
    SlotFlowing(String),
    /// The named slot closed (`isClosed` became true).
    SlotClosed(String),
    /// The named application timer fired.
    Timer(String),
    /// A named application-level meta-event arrived (e.g. `fundsVerified`).
    App(String),
    /// A named user request arrived (Fig. 5 `?` events).
    User(String),
}

impl ModelTrigger {
    /// The channel this trigger refers to, if any.
    pub fn channel(&self) -> Option<&str> {
        match self {
            ModelTrigger::ChannelUp(c)
            | ModelTrigger::ChannelDown(c)
            | ModelTrigger::PeerAvailable(c)
            | ModelTrigger::PeerUnavailable(c) => Some(c),
            _ => None,
        }
    }

    /// The slot this trigger refers to, if any.
    pub fn slot(&self) -> Option<&str> {
        match self {
            ModelTrigger::SlotOpened(s)
            | ModelTrigger::SlotFlowing(s)
            | ModelTrigger::SlotClosed(s) => Some(s),
            _ => None,
        }
    }

    /// The timer this trigger refers to, if any.
    pub fn timer(&self) -> Option<&str> {
        match self {
            ModelTrigger::Timer(t) => Some(t),
            _ => None,
        }
    }
}

impl fmt::Display for ModelTrigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelTrigger::Start => f.write_str("start"),
            ModelTrigger::ChannelUp(c) => write!(f, "channelUp({c})"),
            ModelTrigger::ChannelDown(c) => write!(f, "channelDown({c})"),
            ModelTrigger::PeerAvailable(c) => write!(f, "peerAvailable({c})"),
            ModelTrigger::PeerUnavailable(c) => write!(f, "peerUnavailable({c})"),
            ModelTrigger::SlotOpened(s) => write!(f, "isOpened({s})"),
            ModelTrigger::SlotFlowing(s) => write!(f, "isFlowing({s})"),
            ModelTrigger::SlotClosed(s) => write!(f, "isClosed({s})"),
            ModelTrigger::Timer(t) => write!(f, "timer({t})"),
            ModelTrigger::App(e) => write!(f, "app({e})"),
            ModelTrigger::User(e) => write!(f, "user({e})"),
        }
    }
}

/// Effects a model transition can perform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelEffect {
    /// Open the named signaling channel.
    OpenChannel(String),
    /// Close the named signaling channel (destroys its slots).
    CloseChannel(String),
    /// Send a raw protocol action on a slot, outside any goal — the
    /// escape hatch user-agent programs use, and exactly what the
    /// conformance pass checks against the Fig.-9 send table.
    UserAction {
        /// Slot the action is sent on.
        slot: String,
        /// The protocol action.
        action: SlotAction,
    },
    /// Arm (or restart) the named application timer.
    SetTimer(String),
    /// Cancel the named application timer.
    CancelTimer(String),
    /// The program terminates.
    Terminate,
}

impl fmt::Display for ModelEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelEffect::OpenChannel(c) => write!(f, "openChannel({c})"),
            ModelEffect::CloseChannel(c) => write!(f, "closeChannel({c})"),
            ModelEffect::UserAction { slot, action } => {
                write!(f, "{}({slot})", action.name())
            }
            ModelEffect::SetTimer(t) => write!(f, "setTimer({t})"),
            ModelEffect::CancelTimer(t) => write!(f, "cancelTimer({t})"),
            ModelEffect::Terminate => f.write_str("terminate"),
        }
    }
}

impl GoalAnnotation {
    /// Single-slot annotation.
    pub fn one(kind: GoalKind, slot: impl Into<String>) -> Self {
        Self {
            kind,
            slots: vec![slot.into()],
        }
    }

    /// `flowLink` annotation over two slots.
    pub fn link(a: impl Into<String>, b: impl Into<String>) -> Self {
        Self {
            kind: GoalKind::FlowLink,
            slots: vec![a.into(), b.into()],
        }
    }
}

impl fmt::Display for GoalAnnotation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.kind.name(), self.slots.join(", "))
    }
}

impl StateModel {
    /// New (non-final) state with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Mark this state final (the program may rest here).
    pub fn final_state(mut self) -> Self {
        self.is_final = true;
        self
    }

    /// Add a goal annotation.
    pub fn goal(mut self, ann: GoalAnnotation) -> Self {
        self.goals.push(ann);
        self
    }

    /// Add a transition.
    pub fn on(
        mut self,
        trigger: ModelTrigger,
        to: impl Into<String>,
        effects: Vec<ModelEffect>,
    ) -> Self {
        self.transitions.push(TransitionModel {
            trigger,
            to: to.into(),
            effects,
        });
        self
    }
}

impl ProgramModel {
    /// New empty model. The first state added becomes the initial state
    /// unless [`ProgramModel::initial`] is set explicitly.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Declare a slot, optionally bound to a channel.
    pub fn slot(mut self, name: impl Into<String>, channel: Option<&str>) -> Self {
        self.slots.push(SlotDecl {
            name: name.into(),
            channel: channel.map(str::to_owned),
        });
        self
    }

    /// Declare a signaling channel.
    pub fn channel(mut self, name: impl Into<String>) -> Self {
        self.channels.push(name.into());
        self
    }

    /// Declare an application timer.
    pub fn timer(mut self, name: impl Into<String>) -> Self {
        self.timers.push(name.into());
        self
    }

    /// Add a state. The first state added becomes the initial state.
    pub fn state(mut self, state: StateModel) -> Self {
        if self.initial.is_empty() {
            self.initial.clone_from(&state.name);
        }
        self.states.push(state);
        self
    }

    /// Look up a state by name.
    pub fn state_named(&self, name: &str) -> Option<&StateModel> {
        self.states.iter().find(|s| s.name == name)
    }

    /// Look up a slot declaration by name.
    pub fn slot_named(&self, name: &str) -> Option<&SlotDecl> {
        self.slots.iter().find(|s| s.name == name)
    }

    /// Names of states reachable from the initial state by following
    /// transitions (fixpoint reachability).
    pub fn reachable_states(&self) -> BTreeSet<&str> {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut work: Vec<&str> = vec![self.initial.as_str()];
        while let Some(name) = work.pop() {
            if !seen.insert(name) {
                continue;
            }
            if let Some(state) = self.state_named(name) {
                for t in &state.transitions {
                    work.push(t.to.as_str());
                }
            }
        }
        seen
    }

    /// Structural validity errors: missing initial state, duplicate state
    /// names, transitions to undeclared states, references to undeclared
    /// slots / channels / timers, and malformed goal annotations. An empty
    /// result means the model is well formed enough for the analyzer.
    pub fn validate(&self) -> Vec<String> {
        let mut errs = Vec::new();
        if self.state_named(&self.initial).is_none() {
            errs.push(format!(
                "initial state `{}` is not declared in program `{}`",
                self.initial, self.name
            ));
        }
        let mut seen_states: BTreeSet<&str> = BTreeSet::new();
        for s in &self.states {
            if !seen_states.insert(s.name.as_str()) {
                errs.push(format!("duplicate state name `{}`", s.name));
            }
        }
        let slot_names: BTreeSet<&str> = self.slots.iter().map(|s| s.name.as_str()).collect();
        let chan_names: BTreeSet<&str> = self.channels.iter().map(String::as_str).collect();
        let timer_names: BTreeSet<&str> = self.timers.iter().map(String::as_str).collect();
        let check_slot = |slot: &str, at: &str, errs: &mut Vec<String>| {
            if !slot_names.contains(slot) {
                errs.push(format!("undeclared slot `{slot}` referenced {at}"));
            }
        };
        for decl in &self.slots {
            if let Some(ch) = &decl.channel {
                if !chan_names.contains(ch.as_str()) {
                    errs.push(format!(
                        "slot `{}` rides undeclared channel `{ch}`",
                        decl.name
                    ));
                }
            }
        }
        for state in &self.states {
            for g in &state.goals {
                let want = if g.kind == GoalKind::FlowLink { 2 } else { 1 };
                if g.slots.len() != want {
                    errs.push(format!(
                        "goal {} in state `{}` names {} slot(s), expected {want}",
                        g.kind,
                        state.name,
                        g.slots.len()
                    ));
                }
                for slot in &g.slots {
                    check_slot(
                        slot,
                        &format!("by goal in state `{}`", state.name),
                        &mut errs,
                    );
                }
            }
            for t in &state.transitions {
                if self.state_named(&t.to).is_none() {
                    errs.push(format!(
                        "transition `{}` from state `{}` targets undeclared state `{}`",
                        t.trigger, state.name, t.to
                    ));
                }
                if let Some(ch) = t.trigger.channel() {
                    if !chan_names.contains(ch) {
                        errs.push(format!(
                            "trigger `{}` in state `{}` names undeclared channel",
                            t.trigger, state.name
                        ));
                    }
                }
                if let Some(slot) = t.trigger.slot() {
                    check_slot(
                        slot,
                        &format!("by trigger in state `{}`", state.name),
                        &mut errs,
                    );
                }
                if let Some(timer) = t.trigger.timer() {
                    if !timer_names.contains(timer) {
                        errs.push(format!(
                            "trigger `{}` in state `{}` names undeclared timer",
                            t.trigger, state.name
                        ));
                    }
                }
                for e in &t.effects {
                    match e {
                        ModelEffect::OpenChannel(ch) | ModelEffect::CloseChannel(ch) => {
                            if !chan_names.contains(ch.as_str()) {
                                errs.push(format!(
                                    "effect `{e}` in state `{}` names undeclared channel",
                                    state.name
                                ));
                            }
                        }
                        ModelEffect::UserAction { slot, .. } => check_slot(
                            slot,
                            &format!("by effect in state `{}`", state.name),
                            &mut errs,
                        ),
                        ModelEffect::SetTimer(t) | ModelEffect::CancelTimer(t) => {
                            if !timer_names.contains(t.as_str()) {
                                errs.push(format!(
                                    "effect `{e}` in state `{}` names undeclared timer",
                                    state.name
                                ));
                            }
                        }
                        ModelEffect::Terminate => {}
                    }
                }
            }
        }
        errs
    }

    /// True iff no state has two transitions on the same trigger — the
    /// determinism every Fig.-6 program in the paper has.
    pub fn is_deterministic(&self) -> bool {
        self.states.iter().all(|s| {
            let mut seen: Vec<&ModelTrigger> = Vec::new();
            s.transitions.iter().all(|t| {
                if seen.contains(&&t.trigger) {
                    false
                } else {
                    seen.push(&t.trigger);
                    true
                }
            })
        })
    }

    /// Every trigger used anywhere in the model — the program's declared
    /// event alphabet. Unhandled triggers in a state are implicit
    /// self-loops (programs ignore events they are not waiting for).
    pub fn trigger_alphabet(&self) -> Vec<&ModelTrigger> {
        let mut out: Vec<&ModelTrigger> = Vec::new();
        for s in &self.states {
            for t in &s.transitions {
                if !out.contains(&&t.trigger) {
                    out.push(&t.trigger);
                }
            }
        }
        out
    }

    /// Names of *sink* states: reachable final states with no outgoing
    /// transitions. A sink is a permanent rest — once entered, the
    /// program's goal claims there hold forever, which is what makes
    /// cross-box "blocked forever" reasoning sound. (A final state *with*
    /// transitions, like prepaid's `talking`, is a rest the program can
    /// still leave, so it is not a sink.)
    pub fn sinks(&self) -> Vec<&str> {
        let reachable = self.reachable_states();
        self.states
            .iter()
            .filter(|s| {
                s.is_final && s.transitions.is_empty() && reachable.contains(s.name.as_str())
            })
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Goal claims of the given kinds that mention `slot` in state `state`.
    pub fn claims_on(&self, state: &str, slot: &str) -> Vec<&GoalAnnotation> {
        self.state_named(state)
            .map(|s| {
                s.goals
                    .iter()
                    .filter(|g| g.slots.iter().any(|sl| sl == slot))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Every `(state name, effect)` pair reachable from the initial state,
    /// in deterministic (state-declaration, transition) order.
    pub fn reachable_effects(&self) -> Vec<(&str, &ModelEffect)> {
        let reachable = self.reachable_states();
        let mut out = Vec::new();
        for s in &self.states {
            if !reachable.contains(s.name.as_str()) {
                continue;
            }
            for t in &s.transitions {
                for e in &t.effects {
                    out.push((s.name.as_str(), e));
                }
            }
        }
        out
    }

    /// Slot names riding channel `channel`, in declaration order. The
    /// declaration order is the tunnel order on the channel, so pairing
    /// the n-th rider on each side of a bound link pairs actual tunnel
    /// peers.
    pub fn slots_on_channel(&self, channel: &str) -> Vec<&str> {
        self.slots
            .iter()
            .filter(|s| s.channel.as_deref() == Some(channel))
            .map(|s| s.name.as_str())
            .collect()
    }

    /// Remove state `name` along with every transition targeting it, from
    /// any other state. The initial state cannot be removed (the model
    /// would lose its entry point); returns whether anything changed.
    /// Used by delta-minimizing consumers (the fuzz shrinker), which only
    /// need the result to stay *representable* — validity is re-checked
    /// by the caller's predicate.
    pub fn remove_state(&mut self, name: &str) -> bool {
        if name == self.initial || self.state_named(name).is_none() {
            return false;
        }
        self.states.retain(|s| s.name != name);
        for s in &mut self.states {
            s.transitions.retain(|t| t.to != name);
        }
        true
    }

    /// Rename state `old` to `new`, rewriting the initial-state reference
    /// and every transition target. Refuses a rename onto an existing
    /// state name (the model would silently merge two states); returns
    /// whether anything changed. Like [`ProgramModel::remove_state`],
    /// this is a single-field mutation for delta-minimizers and
    /// fingerprint property tests.
    pub fn rename_state(&mut self, old: &str, new: &str) -> bool {
        if old == new || self.state_named(old).is_none() || self.state_named(new).is_some() {
            return false;
        }
        if self.initial == old {
            self.initial = new.to_string();
        }
        for s in &mut self.states {
            if s.name == old {
                s.name = new.to_string();
            }
            for t in &mut s.transitions {
                if t.to == old {
                    t.to = new.to_string();
                }
            }
        }
        true
    }

    /// Drop the first effect of the first transition that has any, in
    /// (state-declaration, transition) order — the smallest behavioral
    /// tweak that leaves the model structurally valid. Returns whether
    /// anything changed (false on an effect-free model).
    pub fn drop_first_effect(&mut self) -> bool {
        for s in &mut self.states {
            for t in &mut s.transitions {
                if !t.effects.is_empty() {
                    t.effects.remove(0);
                    return true;
                }
            }
        }
        false
    }
}

/// A binding of one program-local channel name onto a topology link: box
/// `box_name`'s channel `channel` is the signaling channel toward `peer`.
///
/// Program models name channels locally (`"chIn"`, `"chOut"`), while the
/// topology names links by their two boxes; nothing in the per-box view
/// says which is which. Bindings supply that correspondence, which is what
/// lets the interprocedural analyzer pair slots *across* a tunnel (box A's
/// slot riding its bound channel faces box B's slot riding B's bound
/// channel toward A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelBinding {
    /// The programmed box whose channel is being bound.
    pub box_name: String,
    /// The program-local channel name.
    pub channel: String,
    /// The far box of the topology link the channel rides.
    pub peer: String,
}

/// A whole scenario: a box/channel topology plus a [`ProgramModel`] for
/// each programmed box (pure endpoints and media servers appear only in
/// the topology).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ScenarioModel {
    /// Scenario name (matches the example it mirrors).
    pub name: String,
    /// Signaling-graph topology.
    pub topology: Topology,
    /// `(box name, program)` pairs; box names must appear in the topology.
    pub programs: Vec<(String, ProgramModel)>,
    /// Channel-to-link bindings, for interprocedural analysis. Optional:
    /// an unbound channel simply gets no cross-box checks.
    pub bindings: Vec<ChannelBinding>,
}

impl ScenarioModel {
    /// New empty scenario.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Set the signaling-graph topology.
    pub fn with_topology(mut self, topology: Topology) -> Self {
        self.topology = topology;
        self
    }

    /// Attach a program to a topology box.
    pub fn program(mut self, box_name: impl Into<String>, model: ProgramModel) -> Self {
        self.programs.push((box_name.into(), model));
        self
    }

    /// Bind `box_name`'s program channel `channel` to the topology link
    /// toward `peer`.
    pub fn bind(
        mut self,
        box_name: impl Into<String>,
        channel: impl Into<String>,
        peer: impl Into<String>,
    ) -> Self {
        self.bindings.push(ChannelBinding {
            box_name: box_name.into(),
            channel: channel.into(),
            peer: peer.into(),
        });
        self
    }

    /// The program attached to `box_name`, if any.
    pub fn program_for(&self, box_name: &str) -> Option<&ProgramModel> {
        self.programs
            .iter()
            .find(|(b, _)| b == box_name)
            .map(|(_, m)| m)
    }

    /// The peer box that `box_name`'s channel `channel` is bound toward.
    ///
    /// Falls back to inference when no explicit binding exists and the
    /// correspondence is unambiguous: the box declares exactly one channel
    /// and has exactly one incident topology link.
    pub fn bound_peer(&self, box_name: &str, channel: &str) -> Option<&str> {
        if let Some(b) = self
            .bindings
            .iter()
            .find(|b| b.box_name == box_name && b.channel == channel)
        {
            return Some(&b.peer);
        }
        let program = self.program_for(box_name)?;
        if program.channels.len() != 1 || program.channels[0] != channel {
            return None;
        }
        let mut ends = self.topology.links.iter().filter_map(|l| {
            if l.from == box_name {
                Some(l.to.as_str())
            } else if l.to == box_name {
                Some(l.from.as_str())
            } else {
                None
            }
        });
        match (ends.next(), ends.next()) {
            (Some(peer), None) => Some(peer),
            _ => None,
        }
    }

    /// The program-local channel name `box_name` uses for its link toward
    /// `peer` (the inverse of [`ScenarioModel::bound_peer`]).
    pub fn channel_toward(&self, box_name: &str, peer: &str) -> Option<&str> {
        let program = self.program_for(box_name)?;
        program
            .channels
            .iter()
            .map(String::as_str)
            .find(|c| self.bound_peer(box_name, c) == Some(peer))
    }

    /// Detach the program from `box_name` (the box becomes a pure
    /// endpoint) and drop the bindings that referenced it — a binding
    /// without its program is malformed (`AZ406`), so the two go
    /// together. Returns whether anything changed.
    pub fn remove_program(&mut self, box_name: &str) -> bool {
        let before = self.programs.len();
        self.programs.retain(|(b, _)| b != box_name);
        if self.programs.len() == before {
            return false;
        }
        self.bindings.retain(|b| b.box_name != box_name);
        true
    }

    /// Remove `box_name` from the scenario entirely: its topology box,
    /// every incident link, its program, and every binding that names it
    /// as owner or peer. Returns whether anything changed.
    pub fn remove_box(&mut self, box_name: &str) -> bool {
        if !self.topology.has_box(box_name) {
            return false;
        }
        self.topology.boxes.retain(|b| b != box_name);
        self.topology
            .links
            .retain(|l| l.from != box_name && l.to != box_name);
        self.programs.retain(|(b, _)| b != box_name);
        self.bindings
            .retain(|b| b.box_name != box_name && b.peer != box_name);
        true
    }

    /// Rename box `old` to `new` everywhere it appears: the topology box
    /// and its links, the program attachment, and every binding owner or
    /// peer. Refuses a rename onto an existing box name; returns whether
    /// anything changed. (The attached program's *model name* is left
    /// alone — it names the program, not the box.)
    pub fn rename_box(&mut self, old: &str, new: &str) -> bool {
        if old == new || !self.topology.has_box(old) || self.topology.has_box(new) {
            return false;
        }
        for b in &mut self.topology.boxes {
            if b == old {
                *b = new.to_string();
            }
        }
        for l in &mut self.topology.links {
            if l.from == old {
                l.from = new.to_string();
            }
            if l.to == old {
                l.to = new.to_string();
            }
        }
        for (b, _) in &mut self.programs {
            if b == old {
                *b = new.to_string();
            }
        }
        for b in &mut self.bindings {
            if b.box_name == old {
                b.box_name = new.to_string();
            }
            if b.peer == old {
                b.peer = new.to_string();
            }
        }
        true
    }

    /// The scenario in canonical declaration order: topology boxes sorted
    /// by name and programs sorted by their box name. These are the only
    /// orders no analysis pass can observe — box declarations carry no
    /// payload, and program-scoped findings are keyed by program name —
    /// so two scenarios that differ only in them are analysis-equivalent.
    /// Link, binding, state, and transition order is significant (passes
    /// walk them in order and tie-break on it) and is preserved.
    ///
    /// This is the form content-addressed fingerprints hash, making the
    /// fingerprint insensitive to exactly the reorderings that cannot
    /// change analyzer output.
    pub fn canonicalized(&self) -> Self {
        let mut c = self.clone();
        c.topology.boxes.sort();
        c.programs.sort_by(|(a, _), (b, _)| a.cmp(b));
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ProgramModel {
        ProgramModel::new("tiny")
            .channel("c")
            .slot("s", Some("c"))
            .timer("t")
            .state(
                StateModel::new("init")
                    .goal(GoalAnnotation::one(GoalKind::OpenSlot, "s"))
                    .on(
                        ModelTrigger::Start,
                        "waiting",
                        vec![ModelEffect::OpenChannel("c".into())],
                    ),
            )
            .state(StateModel::new("waiting").on(
                ModelTrigger::SlotFlowing("s".into()),
                "done",
                vec![ModelEffect::Terminate],
            ))
            .state(StateModel::new("done").final_state())
    }

    #[test]
    fn builder_sets_initial_and_validates() {
        let m = tiny();
        assert_eq!(m.initial, "init");
        assert!(m.validate().is_empty(), "{:?}", m.validate());
        assert!(m.is_deterministic());
        assert_eq!(
            m.reachable_states().into_iter().collect::<Vec<_>>(),
            vec!["done", "init", "waiting"]
        );
    }

    #[test]
    fn validate_catches_structural_errors() {
        let m = ProgramModel::new("bad")
            .slot("s", Some("nochan"))
            .state(StateModel::new("a").on(ModelTrigger::Timer("t".into()), "ghost", vec![]))
            .state(StateModel::new("a"));
        let errs = m.validate();
        assert!(
            errs.iter().any(|e| e.contains("duplicate state")),
            "{errs:?}"
        );
        assert!(errs.iter().any(|e| e.contains("ghost")), "{errs:?}");
        assert!(errs.iter().any(|e| e.contains("nochan")), "{errs:?}");
        assert!(
            errs.iter().any(|e| e.contains("undeclared timer")),
            "{errs:?}"
        );
    }

    #[test]
    fn flowlink_annotation_arity_checked() {
        let m = ProgramModel::new("link")
            .slot("a", None)
            .state(StateModel::new("s").goal(GoalAnnotation {
                kind: GoalKind::FlowLink,
                slots: vec!["a".into()],
            }));
        assert!(m.validate().iter().any(|e| e.contains("expected 2")));
    }

    #[test]
    fn remove_state_drops_inbound_transitions_but_keeps_initial() {
        let mut m = tiny();
        assert!(!m.remove_state("init"), "initial state must be kept");
        assert!(m.remove_state("waiting"));
        assert!(m.state_named("waiting").is_none());
        // init's transition targeted `waiting` and must be gone with it.
        assert!(m.state_named("init").unwrap().transitions.is_empty());
        assert!(!m.remove_state("waiting"), "second removal is a no-op");
    }

    #[test]
    fn remove_box_and_program_scrub_links_and_bindings() {
        let mut sc = ScenarioModel::new("t")
            .program("a", tiny())
            .with_topology(
                Topology::new()
                    .with_box("a")
                    .with_box("b")
                    .with_link("a", "b", 1),
            )
            .bind("a", "c", "b");
        let mut detached = sc.clone();
        assert!(detached.remove_program("a"));
        assert!(detached.program_for("a").is_none());
        assert!(detached.bindings.is_empty(), "binding must go with program");
        assert!(detached.topology.has_box("a"), "box outlives its program");

        assert!(sc.remove_box("b"));
        assert!(!sc.topology.has_box("b"));
        assert!(sc.topology.links.is_empty(), "incident link removed");
        assert!(sc.bindings.is_empty(), "binding toward removed peer gone");
        assert!(!sc.remove_box("b"), "second removal is a no-op");
    }

    #[test]
    fn rename_state_rewrites_initial_and_targets() {
        let mut m = tiny();
        assert!(!m.rename_state("waiting", "done"), "collision refused");
        assert!(!m.rename_state("ghost", "x"), "unknown state refused");
        assert!(m.rename_state("waiting", "ringing"));
        assert!(m.state_named("waiting").is_none());
        assert_eq!(m.state_named("init").unwrap().transitions[0].to, "ringing");
        assert!(m.validate().is_empty(), "{:?}", m.validate());
        assert!(m.rename_state("init", "start"));
        assert_eq!(m.initial, "start");
    }

    #[test]
    fn drop_first_effect_is_ordered_and_bounded() {
        let mut m = tiny();
        assert!(m.drop_first_effect());
        assert!(m.state_named("init").unwrap().transitions[0]
            .effects
            .is_empty());
        assert!(m.drop_first_effect(), "waiting's terminate is next");
        assert!(!m.drop_first_effect(), "no effects left");
    }

    #[test]
    fn rename_box_rewrites_topology_programs_and_bindings() {
        let mut sc = ScenarioModel::new("t")
            .program("a", tiny())
            .with_topology(
                Topology::new()
                    .with_box("a")
                    .with_box("b")
                    .with_link("a", "b", 1),
            )
            .bind("a", "c", "b");
        assert!(!sc.rename_box("a", "b"), "collision refused");
        assert!(sc.rename_box("a", "ua"));
        assert!(sc.topology.has_box("ua") && !sc.topology.has_box("a"));
        assert_eq!(sc.topology.links[0].from, "ua");
        assert!(sc.program_for("ua").is_some());
        assert_eq!(sc.bindings[0].box_name, "ua");
        assert!(sc.rename_box("b", "peer"));
        assert_eq!(sc.bindings[0].peer, "peer");
    }

    #[test]
    fn canonicalized_sorts_boxes_and_programs_only() {
        let sc = ScenarioModel::new("t")
            .program("z", tiny())
            .program("a", tiny())
            .with_topology(
                Topology::new()
                    .with_box("z")
                    .with_box("a")
                    .with_link("z", "a", 1),
            );
        let c = sc.canonicalized();
        assert_eq!(c.topology.boxes, vec!["a".to_string(), "z".to_string()]);
        assert_eq!(c.programs[0].0, "a");
        // Link order (and orientation) is significant and untouched.
        assert_eq!(c.topology.links, sc.topology.links);
        // Canonicalizing is idempotent.
        assert_eq!(c.canonicalized(), c);
    }

    #[test]
    fn unreachable_state_detected_via_reachability() {
        let m = ProgramModel::new("orphan")
            .state(StateModel::new("init").final_state())
            .state(StateModel::new("island").final_state());
        assert!(!m.reachable_states().contains("island"));
    }
}
