//! Media policies: who composes descriptors and selectors for a slot.
//!
//! A goal object needs to describe its end of a media channel (as a
//! receiver) and to answer descriptors (as a sender). For goal objects in
//! application servers the answer is fixed: a server slot "may be
//! masquerading as a media endpoint, but it is not a genuine media endpoint,
//! and can neither send nor receive media packets fruitfully", so it mutes
//! media flow in both directions (paper §IV-A). For genuine endpoints the
//! user's address, codec capabilities, and `mute` flags decide.

use crate::codec::Codec;
use crate::descriptor::{Descriptor, MediaAddr, Selector, TagSource};

/// Media capabilities and current user intent of a genuine endpoint.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct EndpointPolicy {
    /// Where this endpoint receives media.
    pub addr: MediaAddr,
    /// Codecs this endpoint can receive, in descending priority order.
    pub recv_codecs: Vec<Codec>,
    /// Codecs this endpoint is able and willing to send.
    pub send_codecs: Vec<Codec>,
    /// The user desires inward media flow to be suspended (Fig. 5).
    pub mute_in: bool,
    /// The user desires outward media flow to be suspended (Fig. 5).
    pub mute_out: bool,
}

impl EndpointPolicy {
    /// A symmetric audio endpoint with the standard codec set and no muting.
    pub fn audio(addr: MediaAddr) -> Self {
        Self {
            addr,
            recv_codecs: Codec::audio_all().to_vec(),
            send_codecs: Codec::audio_all().to_vec(),
            mute_in: false,
            mute_out: false,
        }
    }
}

/// How a slot's descriptors and selectors are produced.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Application-server slot: mutes media in both directions.
    Server,
    /// Genuine media endpoint with user-controlled muting.
    Endpoint(EndpointPolicy),
}

impl Policy {
    /// Compose a fresh self-description as a receiver of media.
    pub fn descriptor(&self, tags: &mut TagSource) -> Descriptor {
        match self {
            Policy::Server => Descriptor::no_media(tags.next()),
            Policy::Endpoint(p) if p.mute_in => Descriptor::no_media(tags.next()),
            Policy::Endpoint(p) => Descriptor::media(tags.next(), p.addr, p.recv_codecs.clone()),
        }
    }

    /// Answer a received descriptor with a selector, applying the paper's
    /// optimal-codec rule: the highest-priority offered codec the sender is
    /// able and willing to send; `noMedia` when muting outward, when the
    /// descriptor offers `noMedia` only, or when no codec is shared.
    pub fn selector_for(&self, desc: &Descriptor) -> Selector {
        match self {
            Policy::Server => Selector::not_sending(desc.tag),
            Policy::Endpoint(p) => {
                if p.mute_out {
                    return Selector::not_sending(desc.tag);
                }
                match desc.best_codec_for(&p.send_codecs) {
                    Some(codec) => Selector::sending(desc.tag, p.addr, codec),
                    None => Selector::not_sending(desc.tag),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tags() -> TagSource {
        TagSource::new(7)
    }

    #[test]
    fn server_policy_mutes_both_directions() {
        let mut t = tags();
        let p = Policy::Server;
        let d = p.descriptor(&mut t);
        assert!(d.is_no_media());
        let peer = Descriptor::media(
            t.next(),
            MediaAddr::v4(10, 0, 0, 9, 4000),
            vec![Codec::G711],
        );
        assert!(!p.selector_for(&peer).is_sending());
    }

    #[test]
    fn endpoint_policy_offers_codecs_and_selects_optimally() {
        let mut t = tags();
        let p = Policy::Endpoint(EndpointPolicy::audio(MediaAddr::v4(10, 0, 0, 1, 4000)));
        let d = p.descriptor(&mut t);
        assert!(!d.is_no_media());
        assert_eq!(d.codecs[0], Codec::G711, "highest fidelity first");

        let peer = Descriptor::media(
            t.next(),
            MediaAddr::v4(10, 0, 0, 2, 5000),
            vec![Codec::G726, Codec::G711],
        );
        let sel = p.selector_for(&peer);
        assert_eq!(
            sel.codec,
            Codec::G726,
            "respects the receiver's priority order"
        );
    }

    #[test]
    fn mute_in_yields_no_media_descriptor() {
        let mut t = tags();
        let mut ep = EndpointPolicy::audio(MediaAddr::v4(10, 0, 0, 1, 4000));
        ep.mute_in = true;
        let d = Policy::Endpoint(ep).descriptor(&mut t);
        assert!(d.is_no_media());
    }

    #[test]
    fn mute_out_yields_no_media_selector() {
        let mut t = tags();
        let mut ep = EndpointPolicy::audio(MediaAddr::v4(10, 0, 0, 1, 4000));
        ep.mute_out = true;
        let peer = Descriptor::media(
            t.next(),
            MediaAddr::v4(10, 0, 0, 2, 5000),
            vec![Codec::G711],
        );
        let sel = Policy::Endpoint(ep).selector_for(&peer);
        assert!(!sel.is_sending());
        assert!(sel.answers_validly(&peer));
    }

    #[test]
    fn no_shared_codec_yields_no_media_selector() {
        let mut t = tags();
        let mut ep = EndpointPolicy::audio(MediaAddr::v4(10, 0, 0, 1, 4000));
        ep.send_codecs = vec![Codec::G729];
        let peer = Descriptor::media(
            t.next(),
            MediaAddr::v4(10, 0, 0, 2, 5000),
            vec![Codec::G711],
        );
        let sel = Policy::Endpoint(ep).selector_for(&peer);
        assert!(!sel.is_sending());
    }
}
