//! The `closeSlot` goal (paper §IV-A).
//!
//! Goal: get the slot to the *closed* state and keep it there. Once closed,
//! an incoming `open` is rejected immediately. A closeslot emits `close`
//! signals and never `open` or `oack` (§VII). Unlike `openSlot`, it has no
//! state precondition: it can gain control with the slot in any state.

use crate::signal::Signal;
use crate::slot::{Slot, SlotEvent};

/// The `closeSlot` goal object (§IV): drives its slot to Closed and
/// rejects any incoming open while it is in control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CloseSlot;

impl CloseSlot {
    /// A fresh `closeSlot` goal.
    pub fn new() -> Self {
        CloseSlot
    }

    /// Gain control: close the channel if it is live in any way.
    pub fn attach(&mut self, slot: &mut Slot) -> Vec<Signal> {
        if slot.state().is_live() {
            vec![slot.send_close().expect("close a live slot")]
        } else {
            vec![]
        }
    }

    /// React to a slot event; emits the signals needed to keep the slot
    /// closed.
    pub fn on_event(&mut self, event: &SlotEvent, slot: &mut Slot) -> Vec<Signal> {
        match event {
            // Reject an incoming open immediately (§IV-A), including one
            // that arrives via an open/open race backoff.
            SlotEvent::OpenReceived { .. } | SlotEvent::RaceBackoff { .. } => {
                vec![slot.send_close().expect("reject pending open")]
            }
            // A predecessor goal's open got accepted after we took over:
            // close the now-flowing channel.
            SlotEvent::Oacked => vec![slot.send_close().expect("close after oack")],
            // Goal achieved (or progressing); nothing to do.
            SlotEvent::PeerClosed { .. }
            | SlotEvent::CloseAcked
            | SlotEvent::Selected { .. }
            | SlotEvent::Described
            | SlotEvent::RaceIgnored
            | SlotEvent::Ignored(_) => vec![],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Medium;
    use crate::descriptor::{Descriptor, Selector, TagSource};
    use crate::slot::SlotState;

    fn peer_open(s: &mut Slot, tags: &mut TagSource) -> SlotEvent {
        let (ev, _) = s.on_signal(Signal::Open {
            medium: Medium::Audio,
            desc: Descriptor::no_media(tags.next()),
        });
        ev
    }

    #[test]
    fn attach_on_closed_slot_does_nothing() {
        let mut g = CloseSlot::new();
        let mut s = Slot::new(true);
        assert!(g.attach(&mut s).is_empty());
        assert_eq!(s.state(), SlotState::Closed);
    }

    #[test]
    fn attach_closes_flowing_slot() {
        let mut g = CloseSlot::new();
        let mut s = Slot::new(true);
        let mut tags = TagSource::new(1);
        // Bring the slot to flowing by hand.
        peer_open(&mut s, &mut tags);
        let answers = s.peer_desc().unwrap().tag;
        s.accept(
            Descriptor::no_media(TagSource::new(2).next()),
            Selector::not_sending(answers),
        )
        .unwrap();
        assert_eq!(s.state(), SlotState::Flowing);

        let out = g.attach(&mut s);
        assert_eq!(out, vec![Signal::Close]);
        assert_eq!(s.state(), SlotState::Closing);
        // closeack completes the goal.
        let (ev, _) = s.on_signal(Signal::CloseAck);
        assert!(g.on_event(&ev, &mut s).is_empty());
        assert_eq!(s.state(), SlotState::Closed);
    }

    #[test]
    fn rejects_incoming_open_immediately() {
        let mut g = CloseSlot::new();
        let mut s = Slot::new(true);
        let mut tags = TagSource::new(1);
        g.attach(&mut s);
        let ev = peer_open(&mut s, &mut tags);
        let out = g.on_event(&ev, &mut s);
        assert_eq!(out, vec![Signal::Close]);
        assert_eq!(s.state(), SlotState::Closing);
    }

    #[test]
    fn closes_after_late_oack() {
        // Slot was Opening under a previous goal; a closeslot takes over,
        // then the oack lands: the channel must still be closed.
        let mut s = Slot::new(true);
        let mut tags = TagSource::new(1);
        s.send_open(Medium::Audio, Descriptor::no_media(tags.next()))
            .unwrap();
        let mut g = CloseSlot::new();
        // Attach while Opening: close immediately.
        let out = g.attach(&mut s);
        assert_eq!(out, vec![Signal::Close]);
        assert_eq!(s.state(), SlotState::Closing);
    }

    #[test]
    fn closes_when_oack_arrives_before_attach_close() {
        // Attach happens while Opening but the close races with the oack:
        // here the goal attaches after the oack made the slot flowing.
        let mut s = Slot::new(true);
        let mut tags = TagSource::new(1);
        s.send_open(Medium::Audio, Descriptor::no_media(tags.next()))
            .unwrap();
        let mut peer_tags = TagSource::new(2);
        let (ev, _) = s.on_signal(Signal::Oack {
            desc: Descriptor::no_media(peer_tags.next()),
        });
        assert_eq!(ev, SlotEvent::Oacked);
        let mut g = CloseSlot::new();
        let out = g.attach(&mut s);
        assert_eq!(out, vec![Signal::Close]);
    }
}
