//! The `holdSlot` goal (paper §IV-A).
//!
//! Goal: accept a media channel and get it to the *flowing* state, but only
//! if the channel is requested by the other end of the signaling path. If
//! the other end closes the channel it stays closed until the other end asks
//! to open it again. A holdslot emits `oack` signals and never `open` or
//! `close` (§VII). Like `closeSlot` it has no state precondition.
//!
//! (The paper notes `acceptSlot` might be a more accurate name, but keeps
//! `holdSlot` for service programmers; we follow the paper.)

use crate::descriptor::TagSource;
use crate::goal::policy::Policy;
use crate::signal::Signal;
use crate::slot::{Slot, SlotEvent, SlotState};

/// The `holdSlot` goal object (§IV): keeps its slot's channel open but
/// parked — accepting incoming opens, muting flow per its policy.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HoldSlot {
    policy: Policy,
    tags: TagSource,
}

impl HoldSlot {
    /// Mutable access to this goal's tag source, for state
    /// canonicalization only.
    #[doc(hidden)]
    pub fn tags_mut(&mut self) -> &mut TagSource {
        &mut self.tags
    }

    /// `holdSlot(s)` with a server (masquerading, both-muted) policy —
    /// the normal case: "when any of these goal objects opens or accepts a
    /// channel, it mutes media flow on the channel in both directions".
    pub fn server(tag_origin: u64) -> Self {
        Self::with_policy(Policy::Server, tag_origin)
    }

    /// `holdSlot(s)` with an explicit receiving policy.
    pub fn with_policy(policy: Policy, tag_origin: u64) -> Self {
        Self {
            policy,
            tags: TagSource::new(tag_origin),
        }
    }

    /// This end's receiving policy while the slot is held.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The user changed a mute flag (a `modify` event of Fig. 5, permitted
    /// at genuine endpoints per §V). Re-describe and re-select in the
    /// flowing state.
    pub fn modify(&mut self, policy: Policy, slot: &mut Slot) -> Vec<Signal> {
        self.policy = policy;
        let mut out = Vec::new();
        if slot.state() == SlotState::Flowing {
            let desc = self.policy.descriptor(&mut self.tags);
            out.push(slot.send_describe(desc).expect("describe while flowing"));
            if let Some(peer) = slot.peer_desc().cloned() {
                let sel = self.policy.selector_for(&peer);
                out.push(slot.send_select(sel).expect("select while flowing"));
            }
        }
        out
    }

    /// Gain control of the slot in any state; accept a pending open.
    ///
    /// On a slot that is already flowing, the holdslot asserts its own
    /// (muted) identity: it describes itself toward the far end and answers
    /// the current peer descriptor. This is exactly the paper's Snapshot
    /// 1 → 2 transition, where PC "sends a describe signal with noMedia to
    /// A" after taking A's channel off its flowlink (§VI-C) — without it
    /// the far endpoint would keep transmitting toward a stale address.
    pub fn attach(&mut self, slot: &mut Slot) -> Vec<Signal> {
        match slot.state() {
            SlotState::Opened => self.accept(slot),
            SlotState::Flowing => self.assert_identity(slot),
            _ => vec![],
        }
    }

    fn assert_identity(&mut self, slot: &mut Slot) -> Vec<Signal> {
        let desc = self.policy.descriptor(&mut self.tags);
        let mut out = vec![slot.send_describe(desc).expect("describe while flowing")];
        if let Some(peer) = slot.peer_desc().cloned() {
            let sel = self.policy.selector_for(&peer);
            out.push(slot.send_select(sel).expect("select while flowing"));
        }
        out
    }

    /// React to a slot event; emits the signals needed to keep the channel
    /// open but parked.
    pub fn on_event(&mut self, event: &SlotEvent, slot: &mut Slot) -> Vec<Signal> {
        match event {
            SlotEvent::OpenReceived { .. } | SlotEvent::RaceBackoff { .. } => self.accept(slot),
            // A predecessor goal's open was accepted; a holdslot keeps the
            // flowing channel and completes the handshake.
            SlotEvent::Oacked => {
                let sel = self
                    .policy
                    .selector_for(slot.peer_desc().expect("oacked slot is described"));
                vec![slot.send_select(sel).expect("select after oack")]
            }
            SlotEvent::Described => {
                let sel = self
                    .policy
                    .selector_for(slot.peer_desc().expect("described slot has desc"));
                vec![slot.send_select(sel).expect("select answers describe")]
            }
            // The other end closed: stay closed until it opens again.
            SlotEvent::PeerClosed { .. }
            | SlotEvent::CloseAcked
            | SlotEvent::Selected { .. }
            | SlotEvent::RaceIgnored
            | SlotEvent::Ignored(_) => vec![],
        }
    }

    fn accept(&mut self, slot: &mut Slot) -> Vec<Signal> {
        let desc = self.policy.descriptor(&mut self.tags);
        let sel = self
            .policy
            .selector_for(slot.peer_desc().expect("opened slot is described"));
        slot.accept(desc, sel).expect("accept pending open").into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Codec, Medium};
    use crate::descriptor::{Descriptor, MediaAddr};
    use crate::goal::policy::EndpointPolicy;

    fn open_sig(tags: &mut TagSource) -> Signal {
        Signal::Open {
            medium: Medium::Audio,
            desc: Descriptor::media(
                tags.next(),
                MediaAddr::v4(10, 0, 0, 9, 4000),
                vec![Codec::G711],
            ),
        }
    }

    #[test]
    fn accepts_incoming_open() {
        let mut g = HoldSlot::server(100);
        let mut s = Slot::new(true);
        let mut peer = TagSource::new(200);
        let (ev, _) = s.on_signal(open_sig(&mut peer));
        let out = g.on_event(&ev, &mut s);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], Signal::Oack { .. }));
        assert!(matches!(out[1], Signal::Select { .. }));
        assert_eq!(s.state(), SlotState::Flowing);
        // Server policy: not transmitting.
        assert!(!s.tx_enabled());
    }

    #[test]
    fn never_reopens_after_peer_close() {
        let mut g = HoldSlot::server(100);
        let mut s = Slot::new(true);
        let mut peer = TagSource::new(200);
        let (ev, _) = s.on_signal(open_sig(&mut peer));
        g.on_event(&ev, &mut s);
        let (ev, _) = s.on_signal(Signal::Close);
        let out = g.on_event(&ev, &mut s);
        assert!(out.is_empty());
        assert_eq!(s.state(), SlotState::Closed);
    }

    #[test]
    fn attach_on_closed_slot_waits() {
        let mut g = HoldSlot::server(100);
        let mut s = Slot::new(true);
        assert!(g.attach(&mut s).is_empty());
        assert_eq!(s.state(), SlotState::Closed);
    }

    #[test]
    fn attach_accepts_pending_open() {
        let mut g = HoldSlot::server(100);
        let mut s = Slot::new(true);
        let mut peer = TagSource::new(200);
        s.on_signal(open_sig(&mut peer));
        let out = g.attach(&mut s);
        assert_eq!(out.len(), 2);
        assert_eq!(s.state(), SlotState::Flowing);
    }

    #[test]
    fn endpoint_holdslot_transmits_real_media() {
        // A holdslot with an endpoint policy, as used at genuine media
        // endpoints (§V): it answers with a real codec.
        let p = Policy::Endpoint(EndpointPolicy::audio(MediaAddr::v4(10, 0, 0, 2, 5000)));
        let mut g = HoldSlot::with_policy(p, 100);
        let mut s = Slot::new(true);
        let mut peer = TagSource::new(200);
        let (ev, _) = s.on_signal(open_sig(&mut peer));
        let out = g.on_event(&ev, &mut s);
        match &out[1] {
            Signal::Select { sel } => {
                assert_eq!(sel.codec, Codec::G711);
                assert!(sel.is_sending());
            }
            other => panic!("expected select, got {other}"),
        }
        assert!(s.tx_enabled());
    }

    #[test]
    fn completes_handshake_for_inherited_opening_slot() {
        // Slot was Opening under a previous goal; holdslot takes over and
        // the oack arrives: holdslot keeps the channel, sending the select.
        let mut s = Slot::new(true);
        let mut tags = TagSource::new(1);
        s.send_open(Medium::Audio, Descriptor::no_media(tags.next()))
            .unwrap();
        let mut g = HoldSlot::server(100);
        assert!(g.attach(&mut s).is_empty());
        let mut peer = TagSource::new(200);
        let (ev, _) = s.on_signal(Signal::Oack {
            desc: Descriptor::no_media(peer.next()),
        });
        let out = g.on_event(&ev, &mut s);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Signal::Select { .. }));
        assert_eq!(s.state(), SlotState::Flowing);
    }
}
