//! The user-agent goal: a genuine media endpoint's slot controller.
//!
//! Implements the user interface of Fig. 5 over the protocol of Fig. 9:
//! users can open, accept, reject, close, and modify (change `mute` flags),
//! at any time. §V notes that endpoints could equivalently be programmed
//! with the three single-slot goal primitives plus free mute choice; this
//! object packages exactly that freedom behind an explicit command API so
//! endpoints can be scripted by applications, simulations, and the checker.

use crate::codec::Medium;
use crate::descriptor::TagSource;
use crate::error::ProtocolError;
use crate::goal::policy::{EndpointPolicy, Policy};
use crate::signal::Signal;
use crate::slot::{Slot, SlotEvent, SlotState};

/// Whether incoming opens are accepted automatically (a resource that
/// always answers) or surfaced to the user first (a ringing telephone).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcceptMode {
    /// Accept incoming opens automatically.
    Auto,
    /// Surface incoming opens to the user as [`UserNote::Ringing`].
    Manual,
}

/// User-initiated events of Fig. 5 (those marked `!` there).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserCmd {
    /// Open a media channel of the given medium.
    Open(Medium),
    /// Accept a pending incoming open.
    Accept,
    /// Reject a pending incoming open.
    Reject,
    /// Close the channel.
    Close,
    /// Change this end's mute choices.
    Modify {
        /// Stop receiving (advertise `noMedia`).
        mute_in: bool,
        /// Stop sending (select `noMedia`).
        mute_out: bool,
    },
}

/// Peer-initiated events of Fig. 5 (those marked `?`), surfaced to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UserNote {
    /// An open request arrived (the device would ring).
    Ringing(Medium),
    /// Our open was accepted; the channel is flowing.
    Accepted,
    /// Our open was rejected, or the flowing channel was closed.
    Closed,
    /// The peer modified its end (advisory only: each end is responsible
    /// for implementing the `mute` values chosen at its end, §III-B).
    PeerModified,
}

/// A genuine media endpoint's controller for one slot.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UserAgent {
    policy: EndpointPolicy,
    accept_mode: AcceptMode,
    tags: TagSource,
}

impl UserAgent {
    /// Mutable access to this goal's tag source, for state
    /// canonicalization only.
    #[doc(hidden)]
    pub fn tags_mut(&mut self) -> &mut TagSource {
        &mut self.tags
    }

    /// A user agent with the given endpoint policy and accept mode.
    pub fn new(policy: EndpointPolicy, accept_mode: AcceptMode, tag_origin: u64) -> Self {
        Self {
            policy,
            accept_mode,
            tags: TagSource::new(tag_origin),
        }
    }

    /// The endpoint's current media policy.
    pub fn policy(&self) -> &EndpointPolicy {
        &self.policy
    }

    fn as_policy(&self) -> Policy {
        Policy::Endpoint(self.policy.clone())
    }

    /// Execute a user command against the slot.
    pub fn command(&mut self, cmd: UserCmd, slot: &mut Slot) -> Result<Vec<Signal>, ProtocolError> {
        match cmd {
            UserCmd::Open(medium) => {
                let desc = self.as_policy().descriptor(&mut self.tags);
                Ok(vec![slot.send_open(medium, desc)?])
            }
            UserCmd::Accept => {
                let desc = self.as_policy().descriptor(&mut self.tags);
                let peer = slot
                    .peer_desc()
                    .cloned()
                    .ok_or(ProtocolError::InvalidRecord("no pending open to accept"))?;
                let sel = self.as_policy().selector_for(&peer);
                Ok(slot.accept(desc, sel)?.into())
            }
            UserCmd::Reject | UserCmd::Close => Ok(vec![slot.send_close()?]),
            UserCmd::Modify { mute_in, mute_out } => {
                let in_changed = self.policy.mute_in != mute_in;
                let out_changed = self.policy.mute_out != mute_out;
                self.policy.mute_in = mute_in;
                self.policy.mute_out = mute_out;
                let mut out = Vec::new();
                if slot.state() == SlotState::Flowing {
                    if in_changed {
                        let desc = self.as_policy().descriptor(&mut self.tags);
                        out.push(slot.send_describe(desc)?);
                    }
                    if out_changed {
                        if let Some(peer) = slot.peer_desc().cloned() {
                            let sel = self.as_policy().selector_for(&peer);
                            out.push(slot.send_select(sel)?);
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    /// React to a slot event: protocol-mandated responses plus a user
    /// notification where Fig. 5 has a `?` event.
    pub fn on_event(&mut self, event: &SlotEvent, slot: &mut Slot) -> (Vec<Signal>, Vec<UserNote>) {
        match event {
            SlotEvent::OpenReceived { medium } | SlotEvent::RaceBackoff { medium } => {
                match self.accept_mode {
                    AcceptMode::Auto => {
                        let desc = self.as_policy().descriptor(&mut self.tags);
                        let peer = slot.peer_desc().cloned().expect("opened slot is described");
                        let sel = self.as_policy().selector_for(&peer);
                        let sigs = slot.accept(desc, sel).expect("accept pending open");
                        (sigs.into(), vec![UserNote::Ringing(*medium)])
                    }
                    AcceptMode::Manual => (vec![], vec![UserNote::Ringing(*medium)]),
                }
            }
            SlotEvent::Oacked => {
                let peer = slot.peer_desc().cloned().expect("oacked slot is described");
                let sel = self.as_policy().selector_for(&peer);
                let sig = slot.send_select(sel).expect("select after oack");
                (vec![sig], vec![UserNote::Accepted])
            }
            SlotEvent::PeerClosed { .. } => (vec![], vec![UserNote::Closed]),
            SlotEvent::Described => {
                let peer = slot.peer_desc().cloned().expect("described slot has desc");
                let sel = self.as_policy().selector_for(&peer);
                let sig = slot.send_select(sel).expect("select answers describe");
                (vec![sig], vec![UserNote::PeerModified])
            }
            SlotEvent::Selected { .. } => (vec![], vec![UserNote::PeerModified]),
            SlotEvent::CloseAcked | SlotEvent::RaceIgnored | SlotEvent::Ignored(_) => {
                (vec![], vec![])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Codec;
    use crate::descriptor::MediaAddr;

    fn agent(host: u8, origin: u64) -> UserAgent {
        UserAgent::new(
            EndpointPolicy::audio(MediaAddr::v4(10, 0, 0, host, 4000)),
            AcceptMode::Auto,
            origin,
        )
    }

    /// Connect two user agents over a direct tunnel and pump messages until
    /// quiescent. Returns final notes.
    fn pump(
        a: (&mut UserAgent, &mut Slot),
        b: (&mut UserAgent, &mut Slot),
        mut queue_ab: Vec<Signal>,
    ) -> Vec<UserNote> {
        let mut notes = Vec::new();
        let mut queue_ba: Vec<Signal> = Vec::new();
        let (ua, sa) = a;
        let (ub, sb) = b;
        for _ in 0..64 {
            if queue_ab.is_empty() && queue_ba.is_empty() {
                break;
            }
            if let Some(sig) = queue_ab.first().cloned() {
                queue_ab.remove(0);
                let (ev, auto) = sb.on_signal(sig);
                queue_ba.extend(auto);
                let (sigs, ns) = ub.on_event(&ev, sb);
                queue_ba.extend(sigs);
                notes.extend(ns);
            }
            if let Some(sig) = queue_ba.first().cloned() {
                queue_ba.remove(0);
                let (ev, auto) = sa.on_signal(sig);
                queue_ab.extend(auto);
                let (sigs, ns) = ua.on_event(&ev, sa);
                queue_ab.extend(sigs);
                notes.extend(ns);
            }
        }
        notes
    }

    #[test]
    fn two_endpoints_establish_two_way_media() {
        let mut ua = agent(1, 10);
        let mut ub = agent(2, 20);
        let mut sa = Slot::new(true);
        let mut sb = Slot::new(false);

        let opens = ua.command(UserCmd::Open(Medium::Audio), &mut sa).unwrap();
        let notes = pump((&mut ua, &mut sa), (&mut ub, &mut sb), opens);

        assert_eq!(sa.state(), SlotState::Flowing);
        assert_eq!(sb.state(), SlotState::Flowing);
        assert!(sa.tx_enabled() && sb.tx_enabled());
        assert!(sa.rx_expected() && sb.rx_expected());
        assert!(notes.contains(&UserNote::Accepted));
        // Optimal codec: both prefer G.711.
        assert_eq!(sa.sent_sel().unwrap().codec, Codec::G711);
        assert_eq!(sb.sent_sel().unwrap().codec, Codec::G711);
    }

    #[test]
    fn manual_mode_rings_until_accepted() {
        let mut ua = agent(1, 10);
        let mut ub = UserAgent::new(
            EndpointPolicy::audio(MediaAddr::v4(10, 0, 0, 2, 4000)),
            AcceptMode::Manual,
            20,
        );
        let mut sa = Slot::new(true);
        let mut sb = Slot::new(false);

        let opens = ua.command(UserCmd::Open(Medium::Audio), &mut sa).unwrap();
        let (ev, _) = sb.on_signal(opens.into_iter().next().unwrap());
        let (sigs, notes) = ub.on_event(&ev, &mut sb);
        assert!(sigs.is_empty(), "manual mode does not auto-accept");
        assert_eq!(notes, vec![UserNote::Ringing(Medium::Audio)]);
        assert_eq!(sb.state(), SlotState::Opened);

        // User accepts.
        let sigs = ub.command(UserCmd::Accept, &mut sb).unwrap();
        assert_eq!(sigs.len(), 2);
        let notes = pump((&mut ua, &mut sa), (&mut ub, &mut sb), vec![]);
        let _ = notes;
        // Deliver oack+select manually:
        for sig in sigs {
            let (ev, _) = sa.on_signal(sig);
            ua.on_event(&ev, &mut sa);
        }
        assert_eq!(sa.state(), SlotState::Flowing);
    }

    #[test]
    fn reject_closes_pending_open() {
        let mut ua = agent(1, 10);
        let mut ub = UserAgent::new(
            EndpointPolicy::audio(MediaAddr::v4(10, 0, 0, 2, 4000)),
            AcceptMode::Manual,
            20,
        );
        let mut sa = Slot::new(true);
        let mut sb = Slot::new(false);
        let opens = ua.command(UserCmd::Open(Medium::Audio), &mut sa).unwrap();
        sb.on_signal(opens.into_iter().next().unwrap());
        let sigs = ub.command(UserCmd::Reject, &mut sb).unwrap();
        assert_eq!(sigs, vec![Signal::Close]);
        let (ev, auto) = sa.on_signal(Signal::Close);
        assert!(matches!(
            ev,
            SlotEvent::PeerClosed {
                was: SlotState::Opening
            }
        ));
        assert_eq!(auto, vec![Signal::CloseAck]);
    }

    #[test]
    fn modify_mute_out_stops_transmission() {
        let mut ua = agent(1, 10);
        let mut ub = agent(2, 20);
        let mut sa = Slot::new(true);
        let mut sb = Slot::new(false);
        let opens = ua.command(UserCmd::Open(Medium::Audio), &mut sa).unwrap();
        pump((&mut ua, &mut sa), (&mut ub, &mut sb), opens);
        assert!(sa.tx_enabled());

        // A mutes outward: sends select(noMedia); transmission disabled.
        let sigs = ua
            .command(
                UserCmd::Modify {
                    mute_in: false,
                    mute_out: true,
                },
                &mut sa,
            )
            .unwrap();
        assert_eq!(sigs.len(), 1);
        assert!(matches!(&sigs[0], Signal::Select { sel } if !sel.is_sending()));
        assert!(!sa.tx_enabled());
        // B learns A is not sending.
        let notes = pump((&mut ua, &mut sa), (&mut ub, &mut sb), sigs);
        assert!(notes.contains(&UserNote::PeerModified));
        assert!(!sb.rx_expected());
        // B→A direction is unaffected (independent directions, §VI-C).
        assert!(sb.tx_enabled());
    }

    #[test]
    fn modify_mute_in_redescribes_and_peer_reselects() {
        let mut ua = agent(1, 10);
        let mut ub = agent(2, 20);
        let mut sa = Slot::new(true);
        let mut sb = Slot::new(false);
        let opens = ua.command(UserCmd::Open(Medium::Audio), &mut sa).unwrap();
        pump((&mut ua, &mut sa), (&mut ub, &mut sb), opens);
        assert!(sb.tx_enabled());

        // A mutes inward: describe(noMedia); B must answer select(noMedia).
        let sigs = ua
            .command(
                UserCmd::Modify {
                    mute_in: true,
                    mute_out: false,
                },
                &mut sa,
            )
            .unwrap();
        assert!(matches!(&sigs[0], Signal::Describe { desc } if desc.is_no_media()));
        pump((&mut ua, &mut sa), (&mut ub, &mut sb), sigs);
        assert!(!sb.tx_enabled(), "B stopped sending after A muted in");
        assert!(sa.tx_enabled(), "A→B unaffected");

        // Unmute: flow resumes.
        let sigs = ua
            .command(
                UserCmd::Modify {
                    mute_in: false,
                    mute_out: false,
                },
                &mut sa,
            )
            .unwrap();
        pump((&mut ua, &mut sa), (&mut ub, &mut sb), sigs);
        assert!(
            sb.tx_enabled(),
            "B resumed after A unmuted: recurrence of bothFlowing"
        );
    }

    #[test]
    fn user_close_from_flowing() {
        let mut ua = agent(1, 10);
        let mut ub = agent(2, 20);
        let mut sa = Slot::new(true);
        let mut sb = Slot::new(false);
        let opens = ua.command(UserCmd::Open(Medium::Audio), &mut sa).unwrap();
        pump((&mut ua, &mut sa), (&mut ub, &mut sb), opens);

        let sigs = ua.command(UserCmd::Close, &mut sa).unwrap();
        let notes = pump((&mut ua, &mut sa), (&mut ub, &mut sb), sigs);
        assert!(notes.contains(&UserNote::Closed));
        assert_eq!(sa.state(), SlotState::Closed);
        assert_eq!(sb.state(), SlotState::Closed);
    }

    #[test]
    fn tx_route_points_at_peer_descriptor() {
        let mut ua = agent(1, 10);
        let mut ub = agent(2, 20);
        let mut sa = Slot::new(true);
        let mut sb = Slot::new(false);
        let opens = ua.command(UserCmd::Open(Medium::Audio), &mut sa).unwrap();
        pump((&mut ua, &mut sa), (&mut ub, &mut sb), opens);
        let (to, codec) = sa.tx_route().expect("A transmits");
        assert_eq!(to, MediaAddr::v4(10, 0, 0, 2, 4000));
        assert_eq!(codec, Codec::G711);
        let (to, _) = sb.tx_route().expect("B transmits");
        assert_eq!(to, MediaAddr::v4(10, 0, 0, 1, 4000));
    }

    #[test]
    fn open_while_live_is_an_error() {
        let mut ua = agent(1, 10);
        let mut sa = Slot::new(true);
        ua.command(UserCmd::Open(Medium::Audio), &mut sa).unwrap();
        let err = ua.command(UserCmd::Open(Medium::Audio), &mut sa);
        assert!(matches!(err, Err(ProtocolError::BadState { .. })));
    }

    #[test]
    fn descriptor_tags_advance_per_modify() {
        let mut ua = agent(1, 10);
        let mut ub = agent(2, 20);
        let mut sa = Slot::new(true);
        let mut sb = Slot::new(false);
        let opens = ua.command(UserCmd::Open(Medium::Audio), &mut sa).unwrap();
        pump((&mut ua, &mut sa), (&mut ub, &mut sb), opens);
        let t0 = sa.sent_desc().unwrap().tag;
        let sigs = ua
            .command(
                UserCmd::Modify {
                    mute_in: true,
                    mute_out: false,
                },
                &mut sa,
            )
            .unwrap();
        let t1 = sa.sent_desc().unwrap().tag;
        assert_eq!(t0.origin, t1.origin);
        assert!(t1.generation > t0.generation);
        let _ = sigs;
    }

    #[test]
    fn describe_from_peer_gets_fresh_select_answer() {
        let mut ua = agent(1, 10);
        let mut ub = agent(2, 20);
        let mut sa = Slot::new(true);
        let mut sb = Slot::new(false);
        let opens = ua.command(UserCmd::Open(Medium::Audio), &mut sa).unwrap();
        pump((&mut ua, &mut sa), (&mut ub, &mut sb), opens);

        // B re-describes (e.g. address change simulated by mute toggle off→on→off
        // would be a no-op; drive the describe directly through modify).
        let sigs = ub
            .command(
                UserCmd::Modify {
                    mute_in: true,
                    mute_out: false,
                },
                &mut sb,
            )
            .unwrap();
        let new_tag = match &sigs[0] {
            Signal::Describe { desc } => desc.tag,
            other => panic!("expected describe, got {other}"),
        };
        let (ev, _) = sa.on_signal(sigs.into_iter().next().unwrap());
        let (answer, _) = ua.on_event(&ev, &mut sa);
        match &answer[0] {
            Signal::Select { sel } => {
                assert_eq!(sel.answers, new_tag);
                assert!(
                    !sel.is_sending(),
                    "noMedia descriptor must get noMedia answer"
                );
            }
            other => panic!("expected select, got {other}"),
        }
    }
}
