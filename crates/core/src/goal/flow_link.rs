//! The `flowLink` goal (paper §IV-A, §VII).
//!
//! A flowlink coordinates the signals of its two slots so that, to the rest
//! of the signaling path, the pair behaves like a single transparent tunnel.
//! Its slots can start in *any* pair of states (they may have been linked
//! elsewhere before); the flowlink performs *state matching* (Fig. 12),
//! pushing toward one of the two goal substates — *both flowing* or *both
//! closed* — with a bias toward media flow. Which superstate it works in is
//! chosen by its environment, through the `open` and `close` signals it
//! receives.
//!
//! The code is organized around the two concepts the paper credits for
//! taming the case explosion (§VII, §X-E):
//!
//! * a slot is **described** if it holds a current peer descriptor (slots in
//!   the `opened` and `flowing` states are described);
//! * a slot is **up-to-date** (*utd*) if the other slot is described and
//!   this slot has been sent the other's most recent descriptor.
//!
//! Both are derived from slot state here rather than stored: `utd(i)` holds
//! iff `described(j)` and the descriptor most recently sent into `i` carries
//! the tag of `j`'s peer descriptor. In every live state the flowlink works
//! to make both *utd* flags true; selector handling needs no history at all
//! because only selectors answering the other slot's *current* descriptor
//! are fresh — all others are discarded (§VII).

use crate::descriptor::{Descriptor, Selector, TagSource};
use crate::signal::Signal;
use crate::slot::{Slot, SlotEvent, SlotState};

/// Which of the flowlink's two slots an event or signal belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkSide {
    /// The first linked slot.
    A,
    /// The second linked slot.
    B,
}

impl LinkSide {
    /// The opposite side.
    pub fn other(self) -> LinkSide {
        match self {
            LinkSide::A => LinkSide::B,
            LinkSide::B => LinkSide::A,
        }
    }
}

/// The `flowLink` goal object controlling two slots.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FlowLink {
    /// Source for placeholder `noMedia` descriptors, used to make progress
    /// when the far side is not yet described (e.g. opening toward one side
    /// while the other is still `opening`).
    tags: TagSource,
}

impl FlowLink {
    /// Mutable access to this goal's tag source, for state
    /// canonicalization only.
    #[doc(hidden)]
    pub fn tags_mut(&mut self) -> &mut TagSource {
        &mut self.tags
    }

    /// A fresh `flowLink` goal.
    pub fn new(tag_origin: u64) -> Self {
        Self {
            tags: TagSource::new(tag_origin),
        }
    }

    /// Gain control of both slots, in whatever states they are.
    ///
    /// Precondition (§IV-A): if both slots have a defined medium, the media
    /// must be equal; checked in debug builds.
    pub fn attach(&mut self, a: &mut Slot, b: &mut Slot) -> Vec<(LinkSide, Signal)> {
        debug_assert!(
            match (a.medium(), b.medium()) {
                (Some(x), Some(y)) => x == y,
                _ => true,
            },
            "flowLink precondition: both slots must carry the same medium"
        );
        self.reconcile(a, b)
    }

    /// React to a slot event on `side`.
    pub fn on_event(
        &mut self,
        side: LinkSide,
        event: &SlotEvent,
        a: &mut Slot,
        b: &mut Slot,
    ) -> Vec<(LinkSide, Signal)> {
        let mut out = Vec::new();
        // Close propagation is the only event-driven (rather than
        // state-matched) behaviour: when the environment closes one side,
        // the flowlink moves to the "both closed" superstate by closing the
        // other. State matching must not immediately reopen it.
        if let SlotEvent::PeerClosed { .. } = event {
            let other = match side {
                LinkSide::A => &mut *b,
                LinkSide::B => &mut *a,
            };
            if other.state().is_live() {
                let sig = other.send_close().expect("close a live slot");
                out.push((side.other(), sig));
            }
        }
        out.extend(self.reconcile(a, b));
        out
    }

    /// Idempotent state matching (Fig. 12): from the current pair of slot
    /// states, emit every signal needed to push toward the goal substate and
    /// to make both slots up-to-date, guarded so re-running is harmless.
    fn reconcile(&mut self, a: &mut Slot, b: &mut Slot) -> Vec<(LinkSide, Signal)> {
        let mut out = Vec::new();
        self.reconcile_side(LinkSide::A, a, b, &mut out);
        self.reconcile_side(LinkSide::B, b, a, &mut out);
        out
    }

    /// Push slot `i` (on `side_i`) toward matching slot `j`.
    fn reconcile_side(
        &mut self,
        side_i: LinkSide,
        i: &mut Slot,
        j: &mut Slot,
        out: &mut Vec<(LinkSide, Signal)>,
    ) {
        match i.state() {
            // A pending open on i: answer it transparently as soon as the
            // far side is described; if the far side is closed, first open
            // it (carrying i's descriptor so it stays up-to-date).
            SlotState::Opened => {
                let i_peer_tag = i.peer_desc().expect("opened slot is described").tag;
                if j.is_described() {
                    let desc = j.peer_desc().expect("described").clone();
                    // Forward the far side's cached selector if it answers
                    // i's descriptor; otherwise a placeholder "not sending
                    // yet" selector satisfies the oack/select sequence.
                    let sel = match j.peer_sel() {
                        Some(s) if s.answers == i_peer_tag => s.clone(),
                        _ => Selector::not_sending(i_peer_tag),
                    };
                    let sigs = i.accept(desc, sel).expect("accept pending open");
                    out.extend(sigs.into_iter().map(|s| (side_i, s)));
                } else if j.state() == SlotState::Closed {
                    let medium = i.medium().expect("opened slot has a medium");
                    let desc = i.peer_desc().expect("described").clone();
                    let sig = j.send_open(medium, desc).expect("open a closed slot");
                    out.push((side_i.other(), sig));
                }
                // j opening or closing: wait for it to resolve.
            }
            // i is closed while the far side is live: bias toward media
            // flow — open i rather than closing j (§IV-A).
            SlotState::Closed => {
                if j.state().is_live() {
                    let medium = j.medium().expect("live slot has a medium");
                    let desc = match j.peer_desc() {
                        Some(d) if j.is_described() => d.clone(),
                        // Far side not yet described (still opening):
                        // open with a placeholder so both ends progress.
                        _ => Descriptor::no_media(self.tags.next()),
                    };
                    let sig = i.send_open(medium, desc).expect("open a closed slot");
                    out.push((side_i, sig));
                }
            }
            SlotState::Flowing => {
                // utd maintenance: if the far side is described and i has
                // not been sent its latest descriptor, forward it now.
                if j.is_described() {
                    let j_tag = j.peer_desc().expect("described").tag;
                    if i.sent_desc().map(|d| d.tag) != Some(j_tag) {
                        let desc = j.peer_desc().expect("described").clone();
                        let sig = i.send_describe(desc).expect("describe while flowing");
                        out.push((side_i, sig));
                    }
                }
                // Selector forwarding: a selector cached on j is fresh iff
                // it answers i's current descriptor; forward it into i
                // unless already sent (§VII: only fresh selectors matter,
                // so no selector history is kept).
                if let (Some(sel), Some(peer)) = (j.peer_sel(), i.peer_desc()) {
                    if sel.answers == peer.tag && i.sent_sel() != Some(sel) {
                        let sel = sel.clone();
                        if let Ok(sig) = i.send_select(sel) {
                            out.push((side_i, sig));
                        }
                    }
                }
            }
            // Opening: our open is in flight, nothing to do until it
            // resolves. Closing: wait for the closeack.
            SlotState::Opening | SlotState::Closing => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{Codec, Medium};
    use crate::descriptor::MediaAddr;

    fn media_desc(tags: &mut TagSource, host: u8, port: u16) -> Descriptor {
        Descriptor::media(
            tags.next(),
            MediaAddr::v4(10, 0, 0, host, port),
            vec![Codec::G711, Codec::G726],
        )
    }

    /// Deliver a signal into one side of the flowlink and run its reaction.
    fn inject(
        fl: &mut FlowLink,
        side: LinkSide,
        sig: Signal,
        a: &mut Slot,
        b: &mut Slot,
    ) -> (Vec<Signal>, Vec<(LinkSide, Signal)>) {
        let (ev, auto) = match side {
            LinkSide::A => a.on_signal(sig),
            LinkSide::B => b.on_signal(sig),
        };
        let out = fl.on_event(side, &ev, a, b);
        (auto, out)
    }

    #[test]
    fn closed_closed_is_stable() {
        let mut fl = FlowLink::new(500);
        let mut a = Slot::new(true);
        let mut b = Slot::new(true);
        assert!(fl.attach(&mut a, &mut b).is_empty());
    }

    #[test]
    fn incoming_open_is_forwarded_transparently() {
        // L opens toward the flowlink: the flowlink forwards the open on
        // the other side, carrying L's descriptor unchanged.
        let mut fl = FlowLink::new(500);
        let mut a = Slot::new(true);
        let mut b = Slot::new(true);
        fl.attach(&mut a, &mut b);

        let mut l_tags = TagSource::new(1);
        let dl = media_desc(&mut l_tags, 1, 4000);
        let (_, out) = inject(
            &mut fl,
            LinkSide::A,
            Signal::Open {
                medium: Medium::Audio,
                desc: dl.clone(),
            },
            &mut a,
            &mut b,
        );
        assert_eq!(out.len(), 1);
        match &out[0] {
            (LinkSide::B, Signal::Open { medium, desc }) => {
                assert_eq!(*medium, Medium::Audio);
                assert_eq!(desc.tag, dl.tag, "descriptor forwarded unchanged");
            }
            other => panic!("expected forwarded open, got {other:?}"),
        }
        assert_eq!(
            a.state(),
            SlotState::Opened,
            "answer deferred until far side described"
        );
        assert_eq!(b.state(), SlotState::Opening);
    }

    #[test]
    fn end_to_end_transparent_setup() {
        // Full chain: L -- a [flowlink] b -- R. R accepts; everything L and
        // R observe is exactly what they would observe on a single tunnel.
        let mut fl = FlowLink::new(500);
        let mut a = Slot::new(true);
        let mut b = Slot::new(true);
        fl.attach(&mut a, &mut b);

        let mut l_tags = TagSource::new(1);
        let mut r_tags = TagSource::new(2);
        let dl = media_desc(&mut l_tags, 1, 4000);
        let (_, out) = inject(
            &mut fl,
            LinkSide::A,
            Signal::Open {
                medium: Medium::Audio,
                desc: dl.clone(),
            },
            &mut a,
            &mut b,
        );
        let fwd_open = out.into_iter().next().unwrap().1;

        // R receives the open and accepts with its own descriptor and a
        // real selector answering L's descriptor.
        let mut r = Slot::new(false);
        let (ev, _) = r.on_signal(fwd_open);
        assert!(matches!(ev, SlotEvent::OpenReceived { .. }));
        let dr = media_desc(&mut r_tags, 2, 5000);
        let sel_r = Selector::sending(dl.tag, MediaAddr::v4(10, 0, 0, 2, 5000), Codec::G711);
        let [oack, select] = r.accept(dr.clone(), sel_r.clone()).unwrap();

        // The oack comes back into side B: the flowlink accepts the pending
        // open on side A, forwarding R's descriptor.
        let (_, out) = inject(&mut fl, LinkSide::B, oack, &mut a, &mut b);
        assert_eq!(b.state(), SlotState::Flowing);
        assert_eq!(a.state(), SlotState::Flowing);
        let oack_to_l = out
            .iter()
            .find_map(|(s, sig)| match (s, sig) {
                (LinkSide::A, Signal::Oack { desc }) => Some(desc.clone()),
                _ => None,
            })
            .expect("oack forwarded to L");
        assert_eq!(oack_to_l.tag, dr.tag, "R's descriptor reaches L unchanged");

        // R's selector follows and is forwarded to L because it answers
        // L's current descriptor.
        let (_, out) = inject(&mut fl, LinkSide::B, select, &mut a, &mut b);
        let sel_to_l = out
            .iter()
            .find_map(|(s, sig)| match (s, sig) {
                (LinkSide::A, Signal::Select { sel }) => Some(sel.clone()),
                _ => None,
            })
            .expect("fresh selector forwarded to L");
        assert_eq!(sel_to_l.answers, dl.tag);
        assert_eq!(sel_to_l.codec, Codec::G711);

        // L answers R's descriptor; the selector is forwarded to R.
        let sel_l = Selector::sending(dr.tag, MediaAddr::v4(10, 0, 0, 1, 4000), Codec::G726);
        let (_, out) = inject(
            &mut fl,
            LinkSide::A,
            Signal::Select { sel: sel_l.clone() },
            &mut a,
            &mut b,
        );
        let sel_to_r = out
            .iter()
            .find_map(|(s, sig)| match (s, sig) {
                (LinkSide::B, Signal::Select { sel }) => Some(sel.clone()),
                _ => None,
            })
            .expect("L's selector forwarded to R");
        assert_eq!(sel_to_r, sel_l);
    }

    #[test]
    fn attach_flowing_closed_opens_the_closed_side() {
        // The bias toward media flow (§IV-A): entering flowLink(s1,s2) with
        // s1 flowing and s2 closed attempts to get s2 flowing, not to close
        // s1. This is the Click-to-Dial busy-tone situation (Fig. 6).
        let mut l_tags = TagSource::new(1);
        let mut fl_old = TagSource::new(99);

        // Bring slot a to flowing by hand (as a previous goal would have).
        let mut a = Slot::new(true);
        let dl = media_desc(&mut l_tags, 1, 4000);
        a.on_signal(Signal::Open {
            medium: Medium::Audio,
            desc: dl.clone(),
        });
        a.accept(
            Descriptor::no_media(fl_old.next()),
            Selector::not_sending(dl.tag),
        )
        .unwrap();
        assert_eq!(a.state(), SlotState::Flowing);

        let mut b = Slot::new(true);
        let mut fl = FlowLink::new(500);
        let out = fl.attach(&mut a, &mut b);
        // The flowlink opens b carrying a's peer descriptor (the phone's).
        let opened: Vec<_> = out
            .iter()
            .filter(|(s, sig)| *s == LinkSide::B && matches!(sig, Signal::Open { .. }))
            .collect();
        assert_eq!(opened.len(), 1);
        match &opened[0].1 {
            Signal::Open { desc, .. } => assert_eq!(desc.tag, dl.tag),
            _ => unreachable!(),
        }
        assert_eq!(a.state(), SlotState::Flowing, "a is not closed");
        assert_eq!(b.state(), SlotState::Opening);
    }

    #[test]
    fn attach_both_flowing_exchanges_descriptors() {
        // Fig. 13's first step: a freshly attached flowlink with two flowing
        // slots sends each slot the most recent descriptor from the other.
        let mut fl_old1 = TagSource::new(98);
        let mut fl_old2 = TagSource::new(99);
        let mut l_tags = TagSource::new(1);
        let mut r_tags = TagSource::new(2);

        let mut a = Slot::new(true);
        let dl = media_desc(&mut l_tags, 1, 4000);
        a.on_signal(Signal::Open {
            medium: Medium::Audio,
            desc: dl.clone(),
        });
        a.accept(
            Descriptor::no_media(fl_old1.next()),
            Selector::not_sending(dl.tag),
        )
        .unwrap();

        let mut b = Slot::new(true);
        let dr = media_desc(&mut r_tags, 2, 5000);
        b.on_signal(Signal::Open {
            medium: Medium::Audio,
            desc: dr.clone(),
        });
        b.accept(
            Descriptor::no_media(fl_old2.next()),
            Selector::not_sending(dr.tag),
        )
        .unwrap();

        let mut fl = FlowLink::new(500);
        let out = fl.attach(&mut a, &mut b);
        let desc_into_a = out.iter().find_map(|(s, sig)| match (s, sig) {
            (LinkSide::A, Signal::Describe { desc }) => Some(desc.tag),
            _ => None,
        });
        let desc_into_b = out.iter().find_map(|(s, sig)| match (s, sig) {
            (LinkSide::B, Signal::Describe { desc }) => Some(desc.tag),
            _ => None,
        });
        assert_eq!(desc_into_a, Some(dr.tag));
        assert_eq!(desc_into_b, Some(dl.tag));
    }

    #[test]
    fn close_propagates_and_reopen_works() {
        // Establish both flowing via the transparent path, close from one
        // end, then reopen: the flowlink must settle in both-closed and then
        // re-establish cleanly.
        let mut fl = FlowLink::new(500);
        let mut a = Slot::new(true);
        let mut b = Slot::new(true);
        fl.attach(&mut a, &mut b);

        let mut l_tags = TagSource::new(1);
        let mut r_tags = TagSource::new(2);
        let dl = media_desc(&mut l_tags, 1, 4000);
        let (_, out) = inject(
            &mut fl,
            LinkSide::A,
            Signal::Open {
                medium: Medium::Audio,
                desc: dl.clone(),
            },
            &mut a,
            &mut b,
        );
        assert!(matches!(out[0].1, Signal::Open { .. }));
        let dr = media_desc(&mut r_tags, 2, 5000);
        inject(
            &mut fl,
            LinkSide::B,
            Signal::Oack { desc: dr.clone() },
            &mut a,
            &mut b,
        );
        assert_eq!(a.state(), SlotState::Flowing);
        assert_eq!(b.state(), SlotState::Flowing);

        // L closes. The flowlink closeacks L (slot auto-response) and sends
        // close toward R.
        let (auto, out) = inject(&mut fl, LinkSide::A, Signal::Close, &mut a, &mut b);
        assert_eq!(auto, vec![Signal::CloseAck]);
        assert!(out
            .iter()
            .any(|(s, sig)| *s == LinkSide::B && *sig == Signal::Close));
        assert_eq!(a.state(), SlotState::Closed);
        assert_eq!(b.state(), SlotState::Closing);

        // R acknowledges; both closed and stable.
        let (_, out) = inject(&mut fl, LinkSide::B, Signal::CloseAck, &mut a, &mut b);
        assert!(out.is_empty());
        assert_eq!(b.state(), SlotState::Closed);

        // L reopens; the open is forwarded again.
        let dl2 = media_desc(&mut l_tags, 1, 4000);
        let (_, out) = inject(
            &mut fl,
            LinkSide::A,
            Signal::Open {
                medium: Medium::Audio,
                desc: dl2,
            },
            &mut a,
            &mut b,
        );
        assert!(out
            .iter()
            .any(|(s, sig)| *s == LinkSide::B && matches!(sig, Signal::Open { .. })));
    }

    #[test]
    fn obsolete_selector_is_absorbed() {
        // §VII / Fig. 13: a selector answering a descriptor that is no
        // longer the other slot's current descriptor is discarded.
        let mut fl = FlowLink::new(500);
        let mut a = Slot::new(true);
        let mut b = Slot::new(true);
        fl.attach(&mut a, &mut b);

        let mut l_tags = TagSource::new(1);
        let mut r_tags = TagSource::new(2);
        let dl = media_desc(&mut l_tags, 1, 4000);
        inject(
            &mut fl,
            LinkSide::A,
            Signal::Open {
                medium: Medium::Audio,
                desc: dl.clone(),
            },
            &mut a,
            &mut b,
        );
        let dr = media_desc(&mut r_tags, 2, 5000);
        inject(
            &mut fl,
            LinkSide::B,
            Signal::Oack { desc: dr.clone() },
            &mut a,
            &mut b,
        );

        // R re-describes itself: b's peer descriptor advances to dr2.
        let dr2 = media_desc(&mut r_tags, 2, 5002);
        let (_, out) = inject(
            &mut fl,
            LinkSide::B,
            Signal::Describe { desc: dr2.clone() },
            &mut a,
            &mut b,
        );
        assert!(
            out.iter()
                .any(|(s, sig)| *s == LinkSide::A && matches!(sig, Signal::Describe { .. })),
            "new descriptor forwarded to L"
        );

        // A selector from L answering the *old* dr is obsolete: absorbed.
        let stale = Selector::sending(dr.tag, MediaAddr::v4(10, 0, 0, 1, 4000), Codec::G711);
        let (_, out) = inject(
            &mut fl,
            LinkSide::A,
            Signal::Select { sel: stale },
            &mut a,
            &mut b,
        );
        assert!(
            !out.iter()
                .any(|(_, sig)| matches!(sig, Signal::Select { .. })),
            "obsolete selector must be absorbed, got {out:?}"
        );

        // A fresh selector answering dr2 is forwarded.
        let fresh = Selector::sending(dr2.tag, MediaAddr::v4(10, 0, 0, 1, 4000), Codec::G711);
        let (_, out) = inject(
            &mut fl,
            LinkSide::A,
            Signal::Select { sel: fresh.clone() },
            &mut a,
            &mut b,
        );
        assert!(out
            .iter()
            .any(|(s, sig)| *s == LinkSide::B && *sig == Signal::Select { sel: fresh.clone() }));
    }

    #[test]
    fn double_pending_opens_resolve_without_deadlock() {
        // Opens arrive on both sides before either is answered: the
        // flowlink must answer both (with the other's descriptor) rather
        // than deadlock waiting for descriptors.
        let mut fl = FlowLink::new(500);
        let mut a = Slot::new(true);
        let mut b = Slot::new(true);
        fl.attach(&mut a, &mut b);

        let mut l_tags = TagSource::new(1);
        let mut r_tags = TagSource::new(2);
        let dl = media_desc(&mut l_tags, 1, 4000);
        let dr = media_desc(&mut r_tags, 2, 5000);

        // Deliver L's open; the flowlink starts opening side B. But R's own
        // open crosses it: side B slot backs off or wins depending on
        // initiator flag. Use a non-initiator slot on B so it backs off.
        let mut b_noninit = Slot::new(false);
        let (_, _out) = inject(
            &mut fl,
            LinkSide::A,
            Signal::Open {
                medium: Medium::Audio,
                desc: dl.clone(),
            },
            &mut a,
            &mut b_noninit,
        );
        assert_eq!(b_noninit.state(), SlotState::Opening);
        // R's open arrives at side B: back off, slot becomes Opened.
        let (_, out) = inject(
            &mut fl,
            LinkSide::B,
            Signal::Open {
                medium: Medium::Audio,
                desc: dr.clone(),
            },
            &mut a,
            &mut b_noninit,
        );
        // Both sides are now pending (A Opened, B Opened): reconcile
        // accepts both with the other's descriptor.
        assert_eq!(a.state(), SlotState::Flowing);
        assert_eq!(b_noninit.state(), SlotState::Flowing);
        let oacks: Vec<_> = out
            .iter()
            .filter(|(_, sig)| matches!(sig, Signal::Oack { .. }))
            .collect();
        assert_eq!(oacks.len(), 2, "both pending opens answered: {out:?}");
        let _ = b; // silence unused in this scenario
    }

    #[test]
    fn flowing_opening_waits_then_updates() {
        // The paper's §VII worked example: slot 1 flowing, slot 2 opening
        // (case 1). When slot 2's oack arrives it is flowing but not
        // up-to-date; the flowlink must send describe with slot 1's
        // descriptor.
        let mut l_tags = TagSource::new(1);
        let mut r_tags = TagSource::new(2);
        let mut old = TagSource::new(99);

        // Slot a: flowing, peer descriptor = L's.
        let mut a = Slot::new(true);
        let dl = media_desc(&mut l_tags, 1, 4000);
        a.on_signal(Signal::Open {
            medium: Medium::Audio,
            desc: dl.clone(),
        });
        a.accept(
            Descriptor::no_media(old.next()),
            Selector::not_sending(dl.tag),
        )
        .unwrap();

        // Slot b: opening — a previous goal sent an open with some stale
        // descriptor that "had nothing to do with this flowlink".
        let mut b = Slot::new(true);
        b.send_open(Medium::Audio, Descriptor::no_media(old.next()))
            .unwrap();

        let mut fl = FlowLink::new(500);
        let out = fl.attach(&mut a, &mut b);
        assert!(
            !out.iter().any(|(s, _)| *s == LinkSide::B),
            "nothing can be sent into an opening slot yet"
        );

        // R accepts the stale open: b becomes flowing with utd(b) false.
        let dr = media_desc(&mut r_tags, 2, 5000);
        let (_, out) = inject(
            &mut fl,
            LinkSide::B,
            Signal::Oack { desc: dr.clone() },
            &mut a,
            &mut b,
        );
        // The flowlink makes b up-to-date by forwarding a's descriptor...
        assert!(out.iter().any(|(s, sig)| matches!(
            (s, sig),
            (LinkSide::B, Signal::Describe { desc }) if desc.tag == dl.tag
        )));
        // ...and a up-to-date with b's newly learned descriptor.
        assert!(out.iter().any(|(s, sig)| matches!(
            (s, sig),
            (LinkSide::A, Signal::Describe { desc }) if desc.tag == dr.tag
        )));
    }
}
