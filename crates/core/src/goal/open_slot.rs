//! The `openSlot` goal (paper §IV-A).
//!
//! Goal: open a media channel and get it to the *flowing* state, taking
//! every possible opportunity to push the slot toward flowing. If it sends
//! `open` and receives a reject (`close`), it sends `open` again. It emits
//! `open` and `oack` signals and never `close` — in an open/open race it may
//! back off and be the acceptor instead (§VII).

use crate::codec::Medium;
use crate::descriptor::TagSource;
use crate::goal::policy::Policy;
use crate::signal::Signal;
use crate::slot::{Slot, SlotEvent, SlotState};

/// The `openSlot` goal object (§IV): drives its slot toward a flowing
/// media channel of its medium, re-opening whenever the channel closes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct OpenSlot {
    medium: Medium,
    policy: Policy,
    tags: TagSource,
}

impl OpenSlot {
    /// Mutable access to this goal's tag source, for state
    /// canonicalization only.
    #[doc(hidden)]
    pub fn tags_mut(&mut self) -> &mut TagSource {
        &mut self.tags
    }

    /// `openSlot(s, m)` with a server (masquerading, both-muted) policy.
    pub fn server(medium: Medium, tag_origin: u64) -> Self {
        Self::with_policy(medium, Policy::Server, tag_origin)
    }

    /// `openSlot(s, m)` with an explicit receiving policy.
    pub fn with_policy(medium: Medium, policy: Policy, tag_origin: u64) -> Self {
        Self {
            medium,
            policy,
            tags: TagSource::new(tag_origin),
        }
    }

    /// The medium this goal opens.
    pub fn medium(&self) -> Medium {
        self.medium
    }

    /// This end's receiving policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// Update the policy (endpoint mute flags changed). Takes effect on the
    /// next descriptor/selector this goal composes; callers that want an
    /// immediate renegotiation drive a `modify` through [`Self::modify`].
    pub fn set_policy(&mut self, policy: Policy) {
        self.policy = policy;
    }

    /// The goal object gains control of its slot. The annotation
    /// `openSlot(s, m)` may appear only in program states entered with `s`
    /// closed (§IV-A), but after a race backoff or goal reshuffling the slot
    /// can be in other states; the object pushes toward flowing from
    /// wherever it is.
    pub fn attach(&mut self, slot: &mut Slot) -> Vec<Signal> {
        match slot.state() {
            SlotState::Closed => {
                let desc = self.policy.descriptor(&mut self.tags);
                vec![slot.send_open(self.medium, desc).expect("open from closed")]
            }
            SlotState::Opened => self.accept(slot),
            // Goal already achieved, but the channel was negotiated by a
            // predecessor goal: assert this goal's own identity so the far
            // end stops using stale descriptors (cf. §VI-C, holdSlot).
            SlotState::Flowing => {
                let desc = self.policy.descriptor(&mut self.tags);
                let mut out = vec![slot.send_describe(desc).expect("describe while flowing")];
                if let Some(peer) = slot.peer_desc().cloned() {
                    let sel = self.policy.selector_for(&peer);
                    out.push(slot.send_select(sel).expect("select while flowing"));
                }
                out
            }
            // Opening: our open (or a predecessor goal's) is in flight; wait.
            // Closing: wait for the closeack, then reopen.
            _ => vec![],
        }
    }

    /// React to a slot event.
    pub fn on_event(&mut self, event: &SlotEvent, slot: &mut Slot) -> Vec<Signal> {
        match event {
            SlotEvent::Oacked => {
                // ?oack / !select (Fig. 9).
                let sel = self
                    .policy
                    .selector_for(slot.peer_desc().expect("oacked slot is described"));
                vec![slot.send_select(sel).expect("select after oack")]
            }
            SlotEvent::OpenReceived { .. } | SlotEvent::RaceBackoff { .. } => self.accept(slot),
            SlotEvent::PeerClosed { .. } | SlotEvent::CloseAcked => {
                // Rejected or closed: try again immediately.
                let desc = self.policy.descriptor(&mut self.tags);
                vec![slot
                    .send_open(self.medium, desc)
                    .expect("reopen from closed")]
            }
            SlotEvent::Described => {
                // The receiver of a new descriptor must respond with a
                // selector, if only to show it was received (§VI-B).
                let sel = self
                    .policy
                    .selector_for(slot.peer_desc().expect("described slot has desc"));
                vec![slot.send_select(sel).expect("select answers describe")]
            }
            SlotEvent::Selected { .. } | SlotEvent::RaceIgnored | SlotEvent::Ignored(_) => vec![],
        }
    }

    /// The user changed a mute flag (or address/codec) — a `modify` event of
    /// Fig. 5. Re-describe and/or re-select in the flowing state.
    pub fn modify(&mut self, policy: Policy, slot: &mut Slot) -> Vec<Signal> {
        self.policy = policy;
        let mut out = Vec::new();
        if slot.state() == SlotState::Flowing {
            let desc = self.policy.descriptor(&mut self.tags);
            out.push(slot.send_describe(desc).expect("describe while flowing"));
            if let Some(peer) = slot.peer_desc().cloned() {
                let sel = self.policy.selector_for(&peer);
                out.push(slot.send_select(sel).expect("select while flowing"));
            }
        }
        out
    }

    fn accept(&mut self, slot: &mut Slot) -> Vec<Signal> {
        let desc = self.policy.descriptor(&mut self.tags);
        let sel = self
            .policy
            .selector_for(slot.peer_desc().expect("opened slot is described"));
        slot.accept(desc, sel).expect("accept pending open").into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::Descriptor;

    fn server_goal() -> OpenSlot {
        OpenSlot::server(Medium::Audio, 100)
    }

    #[test]
    fn attach_on_closed_slot_sends_open() {
        let mut g = server_goal();
        let mut s = Slot::new(true);
        let out = g.attach(&mut s);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            Signal::Open {
                medium: Medium::Audio,
                ..
            }
        ));
        assert_eq!(s.state(), SlotState::Opening);
    }

    #[test]
    fn reopens_after_reject() {
        // §IV-A: "If an openslot sends open and receives reject, then it
        // sends open again."
        let mut g = server_goal();
        let mut s = Slot::new(true);
        g.attach(&mut s);
        let (ev, _) = s.on_signal(Signal::Close); // reject
        let out = g.on_event(&ev, &mut s);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Signal::Open { .. }));
        assert_eq!(s.state(), SlotState::Opening);
    }

    #[test]
    fn selects_after_oack() {
        let mut g = server_goal();
        let mut s = Slot::new(true);
        g.attach(&mut s);
        let mut peer_tags = TagSource::new(200);
        let (ev, _) = s.on_signal(Signal::Oack {
            desc: Descriptor::no_media(peer_tags.next()),
        });
        let out = g.on_event(&ev, &mut s);
        assert_eq!(out.len(), 1);
        assert!(matches!(out[0], Signal::Select { .. }));
        assert_eq!(s.state(), SlotState::Flowing);
    }

    #[test]
    fn accepts_incoming_open_when_racing() {
        // A racing openslot that loses backs off and accepts.
        let mut g = server_goal();
        let mut s = Slot::new(false); // not the channel initiator: loses races
        g.attach(&mut s);
        let mut peer_tags = TagSource::new(200);
        let (ev, _) = s.on_signal(Signal::Open {
            medium: Medium::Audio,
            desc: Descriptor::no_media(peer_tags.next()),
        });
        assert!(matches!(ev, SlotEvent::RaceBackoff { .. }));
        let out = g.on_event(&ev, &mut s);
        assert_eq!(out.len(), 2);
        assert!(matches!(out[0], Signal::Oack { .. }));
        assert!(matches!(out[1], Signal::Select { .. }));
        assert_eq!(s.state(), SlotState::Flowing);
    }

    #[test]
    fn reopens_when_peer_closes_flowing_channel() {
        let mut g = server_goal();
        let mut s = Slot::new(true);
        g.attach(&mut s);
        let mut peer_tags = TagSource::new(200);
        let (ev, _) = s.on_signal(Signal::Oack {
            desc: Descriptor::no_media(peer_tags.next()),
        });
        g.on_event(&ev, &mut s);
        assert_eq!(s.state(), SlotState::Flowing);
        let (ev, _) = s.on_signal(Signal::Close);
        let out = g.on_event(&ev, &mut s);
        assert!(matches!(out[0], Signal::Open { .. }));
    }

    #[test]
    fn answers_describe_with_select() {
        let mut g = server_goal();
        let mut s = Slot::new(true);
        g.attach(&mut s);
        let mut peer_tags = TagSource::new(200);
        let (ev, _) = s.on_signal(Signal::Oack {
            desc: Descriptor::no_media(peer_tags.next()),
        });
        g.on_event(&ev, &mut s);
        let new_desc = Descriptor::no_media(peer_tags.next());
        let (ev, _) = s.on_signal(Signal::Describe {
            desc: new_desc.clone(),
        });
        let out = g.on_event(&ev, &mut s);
        assert_eq!(out.len(), 1);
        match &out[0] {
            Signal::Select { sel } => assert_eq!(sel.answers, new_desc.tag),
            other => panic!("expected select, got {other}"),
        }
    }

    #[test]
    fn attach_accepts_pending_open() {
        let mut g = server_goal();
        let mut s = Slot::new(true);
        let mut peer_tags = TagSource::new(200);
        s.on_signal(Signal::Open {
            medium: Medium::Audio,
            desc: Descriptor::no_media(peer_tags.next()),
        });
        let out = g.attach(&mut s);
        assert_eq!(out.len(), 2);
        assert_eq!(s.state(), SlotState::Flowing);
    }
}
