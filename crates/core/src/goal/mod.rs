//! The four media-control goal primitives (paper §IV) plus the endpoint
//! user agent, and the [`Goal`] sum type that boxes dispatch through.
//!
//! Each goal object reads all the signals received from its slot(s) and
//! writes all the signals sent to them. Application programs never touch
//! signals directly: in each program state, annotations give a static
//! description of the goal for each slot (§IV-A).

pub mod close_slot;
pub mod flow_link;
pub mod hold_slot;
pub mod open_slot;
pub mod policy;
pub mod user_agent;

pub use close_slot::CloseSlot;
pub use flow_link::{FlowLink, LinkSide};
pub use hold_slot::HoldSlot;
pub use open_slot::OpenSlot;
pub use policy::{EndpointPolicy, Policy};
pub use user_agent::{AcceptMode, UserAgent, UserCmd, UserNote};

use crate::ids::SlotId;
use crate::signal::Signal;
use crate::slot::{Slot, SlotEvent};

/// A goal object controlling one slot (or two, for a flowlink).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Goal {
    /// Open a media channel through the slot (`openSlot`, §IV).
    Open(OpenSlot),
    /// Close the slot's media channel (`closeSlot`, §IV).
    Close(CloseSlot),
    /// Keep the slot's channel open but parked (`holdSlot`, §IV).
    Hold(HoldSlot),
    /// Expose the slot to interactive user control (`userAgent`).
    User(UserAgent),
    /// Splice two slots into one media flow (`flowLink`, §V).
    Link(FlowLink),
}

/// The payload-free kind of a [`Goal`]: the four paper primitives plus the
/// endpoint user agent.
///
/// Goal annotations in declarative program models
/// ([`crate::program::ProgramModel`]) and the goal-conflict pass of
/// `ipmedia-analyze` are expressed over this alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GoalKind {
    /// `openSlot` — open a media channel through the slot.
    OpenSlot,
    /// `closeSlot` — close the slot's media channel.
    CloseSlot,
    /// `holdSlot` — keep the channel open but parked (no flow).
    HoldSlot,
    /// `userAgent` — interactive endpoint control of the slot.
    UserAgent,
    /// `flowLink` — splice two slots into one media flow.
    FlowLink,
}

impl GoalKind {
    /// Every goal kind, in paper order.
    pub const ALL: [GoalKind; 5] = [
        GoalKind::OpenSlot,
        GoalKind::CloseSlot,
        GoalKind::HoldSlot,
        GoalKind::UserAgent,
        GoalKind::FlowLink,
    ];

    /// The paper's camel-case name for this primitive.
    pub fn name(self) -> &'static str {
        match self {
            GoalKind::OpenSlot => "openSlot",
            GoalKind::CloseSlot => "closeSlot",
            GoalKind::HoldSlot => "holdSlot",
            GoalKind::UserAgent => "userAgent",
            GoalKind::FlowLink => "flowLink",
        }
    }

    /// Whether this goal wants media to flow through the slot.
    ///
    /// `holdSlot` deliberately parks the channel, and `closeSlot` tears it
    /// down; the others either drive toward flow or permit it. Two live
    /// goals on the same slot that disagree on this are in conflict.
    pub fn wants_flow(self) -> bool {
        matches!(
            self,
            GoalKind::OpenSlot | GoalKind::UserAgent | GoalKind::FlowLink
        )
    }
}

impl core::fmt::Display for GoalKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

impl Goal {
    /// The payload-free kind of this goal.
    pub fn kind_enum(&self) -> GoalKind {
        match self {
            Goal::Open(_) => GoalKind::OpenSlot,
            Goal::Close(_) => GoalKind::CloseSlot,
            Goal::Hold(_) => GoalKind::HoldSlot,
            Goal::User(_) => GoalKind::UserAgent,
            Goal::Link(_) => GoalKind::FlowLink,
        }
    }

    /// The paper's camel-case name for this goal's primitive.
    pub fn kind(&self) -> &'static str {
        self.kind_enum().name()
    }

    /// Whether this is a `flowLink` (the only two-slot goal).
    pub fn is_link(&self) -> bool {
        matches!(self, Goal::Link(_))
    }
}

/// An outgoing signal produced by a goal, tagged with the slot that must
/// carry it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    /// The slot (hence tunnel) that carries the signal.
    pub slot: SlotId,
    /// The signal to transmit.
    pub signal: Signal,
}

/// Dispatch glue for single-slot goals: attach.
pub(crate) fn attach_single(goal: &mut Goal, slot: &mut Slot) -> Vec<Signal> {
    match goal {
        Goal::Open(g) => g.attach(slot),
        Goal::Close(g) => g.attach(slot),
        Goal::Hold(g) => g.attach(slot),
        // A user agent attaches passively; it acts on user commands.
        Goal::User(_) => vec![],
        Goal::Link(_) => panic!("flowLink controls two slots; use attach_link"),
    }
}

/// Dispatch glue for single-slot goals: slot event.
pub(crate) fn on_event_single(
    goal: &mut Goal,
    event: &SlotEvent,
    slot: &mut Slot,
) -> (Vec<Signal>, Vec<UserNote>) {
    match goal {
        Goal::Open(g) => (g.on_event(event, slot), vec![]),
        Goal::Close(g) => (g.on_event(event, slot), vec![]),
        Goal::Hold(g) => (g.on_event(event, slot), vec![]),
        Goal::User(g) => g.on_event(event, slot),
        Goal::Link(_) => panic!("flowLink controls two slots; use on_event_link"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Medium;

    #[test]
    fn goal_kinds() {
        assert_eq!(
            Goal::Open(OpenSlot::server(Medium::Audio, 1)).kind(),
            "openSlot"
        );
        assert_eq!(Goal::Close(CloseSlot::new()).kind(), "closeSlot");
        assert_eq!(Goal::Hold(HoldSlot::server(1)).kind(), "holdSlot");
        assert_eq!(Goal::Link(FlowLink::new(1)).kind(), "flowLink");
        assert!(Goal::Link(FlowLink::new(1)).is_link());
        assert!(!Goal::Hold(HoldSlot::server(1)).is_link());
    }
}
