//! The four media-control goal primitives (paper §IV) plus the endpoint
//! user agent, and the [`Goal`] sum type that boxes dispatch through.
//!
//! Each goal object reads all the signals received from its slot(s) and
//! writes all the signals sent to them. Application programs never touch
//! signals directly: in each program state, annotations give a static
//! description of the goal for each slot (§IV-A).

pub mod close_slot;
pub mod flow_link;
pub mod hold_slot;
pub mod open_slot;
pub mod policy;
pub mod user_agent;

pub use close_slot::CloseSlot;
pub use flow_link::{FlowLink, LinkSide};
pub use hold_slot::HoldSlot;
pub use open_slot::OpenSlot;
pub use policy::{EndpointPolicy, Policy};
pub use user_agent::{AcceptMode, UserAgent, UserCmd, UserNote};

use crate::ids::SlotId;
use crate::signal::Signal;
use crate::slot::{Slot, SlotEvent};

/// A goal object controlling one slot (or two, for a flowlink).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Goal {
    Open(OpenSlot),
    Close(CloseSlot),
    Hold(HoldSlot),
    User(UserAgent),
    Link(FlowLink),
}

impl Goal {
    pub fn kind(&self) -> &'static str {
        match self {
            Goal::Open(_) => "openSlot",
            Goal::Close(_) => "closeSlot",
            Goal::Hold(_) => "holdSlot",
            Goal::User(_) => "userAgent",
            Goal::Link(_) => "flowLink",
        }
    }

    pub fn is_link(&self) -> bool {
        matches!(self, Goal::Link(_))
    }
}

/// An outgoing signal produced by a goal, tagged with the slot that must
/// carry it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outgoing {
    pub slot: SlotId,
    pub signal: Signal,
}

/// Dispatch glue for single-slot goals: attach.
pub(crate) fn attach_single(goal: &mut Goal, slot: &mut Slot) -> Vec<Signal> {
    match goal {
        Goal::Open(g) => g.attach(slot),
        Goal::Close(g) => g.attach(slot),
        Goal::Hold(g) => g.attach(slot),
        // A user agent attaches passively; it acts on user commands.
        Goal::User(_) => vec![],
        Goal::Link(_) => panic!("flowLink controls two slots; use attach_link"),
    }
}

/// Dispatch glue for single-slot goals: slot event.
pub(crate) fn on_event_single(
    goal: &mut Goal,
    event: &SlotEvent,
    slot: &mut Slot,
) -> (Vec<Signal>, Vec<UserNote>) {
    match goal {
        Goal::Open(g) => (g.on_event(event, slot), vec![]),
        Goal::Close(g) => (g.on_event(event, slot), vec![]),
        Goal::Hold(g) => (g.on_event(event, slot), vec![]),
        Goal::User(g) => g.on_event(event, slot),
        Goal::Link(_) => panic!("flowLink controls two slots; use on_event_link"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Medium;

    #[test]
    fn goal_kinds() {
        assert_eq!(
            Goal::Open(OpenSlot::server(Medium::Audio, 1)).kind(),
            "openSlot"
        );
        assert_eq!(Goal::Close(CloseSlot::new()).kind(), "closeSlot");
        assert_eq!(Goal::Hold(HoldSlot::server(1)).kind(), "holdSlot");
        assert_eq!(Goal::Link(FlowLink::new(1)).kind(), "flowLink");
        assert!(Goal::Link(FlowLink::new(1)).is_link());
        assert!(!Goal::Hold(HoldSlot::server(1)).is_link());
    }
}
