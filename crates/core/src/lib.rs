//! # ipmedia-core
//!
//! Core implementation of *Compositional Control of IP Media* (Zave &
//! Cheung, CoNEXT 2006): the architecture-independent descriptive model,
//! the idempotent unilateral signaling protocol, and the four high-level
//! media-control goal primitives (`openSlot`, `closeSlot`, `holdSlot`,
//! `flowLink`).

pub mod boxes;
pub mod codec;
pub mod descriptor;
pub mod endpoint;
pub mod error;
pub mod goal;
pub mod ids;
pub mod path;
pub mod program;
pub mod reliable;
pub mod retag;
pub mod signal;
pub mod slot;

pub use boxes::{BoxNote, GoalId, GoalSpec, MediaBox};
pub use codec::{Codec, Medium};
pub use descriptor::{DescTag, Descriptor, MediaAddr, Selector, TagSource};
pub use endpoint::{EndpointLogic, NullLogic};
pub use error::ProtocolError;
pub use goal::{
    AcceptMode, CloseSlot, EndpointPolicy, FlowLink, Goal, HoldSlot, LinkSide, OpenSlot, Outgoing,
    Policy, UserAgent, UserCmd, UserNote,
};
pub use ids::{BoxId, ChannelId, SlotId, SlotRef, TunnelId};
pub use path::{EndGoal, PathEnds, PathSpec, PathType};
pub use program::{AppLogic, BoxCmd, BoxInput, Ctx, ProgramBox, TimerGenerations, TimerId};
pub use reliable::{Reliability, ReliableConfig};
pub use retag::Retag;
pub use signal::{AppEvent, Availability, ChannelMsg, MetaSignal, MixRow, MovieCommand, Signal};
pub use slot::{Slot, SlotEvent, SlotState};
