//! # ipmedia-core
//!
//! Core implementation of *Compositional Control of IP Media* (Zave &
//! Cheung, `CoNEXT` 2006): the architecture-independent descriptive model,
//! the idempotent unilateral signaling protocol, and the four high-level
//! media-control goal primitives (`openSlot`, `closeSlot`, `holdSlot`,
//! `flowLink`).

#![warn(missing_docs)]
#![warn(clippy::pedantic)]
// Pedantic allowlist: these lints fight the codebase's established idiom
// (paper-faithful naming, sans-IO event plumbing) without catching bugs.
#![allow(
    clippy::module_name_repetitions,
    clippy::must_use_candidate,
    clippy::missing_errors_doc,
    clippy::missing_panics_doc,
    clippy::return_self_not_must_use,
    clippy::match_same_arms,
    clippy::similar_names,
    clippy::too_many_lines,
    clippy::items_after_statements,
    clippy::struct_excessive_bools,
    clippy::fn_params_excessive_bools,
    clippy::needless_pass_by_value,
    clippy::uninlined_format_args
)]

pub mod boxes;
pub mod chaos;
pub mod codec;
pub mod descriptor;
pub mod endpoint;
pub mod error;
pub mod goal;
pub mod ids;
pub mod path;
pub mod program;
pub mod reliable;
pub mod retag;
pub mod signal;
pub mod slot;

pub use boxes::{BoxNote, GoalId, GoalSpec, MediaBox};
pub use chaos::{
    generate as generate_chaos, minimize_schedule, ChaosAction, ChaosPhase, ChaosSchedule,
    ChaosTopology, Direction, ScheduleFamily,
};
pub use codec::{Codec, Medium};
pub use descriptor::{DescTag, Descriptor, MediaAddr, Selector, TagSource};
pub use endpoint::{EndpointLogic, NullLogic};
pub use error::ProtocolError;
pub use goal::{
    AcceptMode, CloseSlot, EndpointPolicy, FlowLink, Goal, GoalKind, HoldSlot, LinkSide, OpenSlot,
    Outgoing, Policy, UserAgent, UserCmd, UserNote,
};
pub use ids::{BoxId, ChannelId, SlotId, SlotRef, TunnelId};
pub use path::{ChannelLink, EndGoal, PathEnds, PathSpec, PathType, Topology};
pub use program::{
    AppLogic, BoxCmd, BoxInput, Ctx, GoalAnnotation, ModelEffect, ModelTrigger, ProgramBox,
    ProgramModel, ScenarioModel, SlotDecl, StateModel, TimerGenerations, TimerId, TransitionModel,
};
pub use reliable::{Reliability, ReliableConfig};
pub use retag::Retag;
pub use signal::{
    AppEvent, Availability, ChannelMsg, MetaSignal, MixRow, MovieCommand, Signal, SignalKind,
};
pub use slot::{
    monitor_rules, RecvRule, SendRule, Slot, SlotAction, SlotEvent, SlotState, RECV_RULES,
    SEND_RULES,
};
