//! Media and codecs (paper §III-B, §VI-A).
//!
//! A *medium* is the kind of content a media channel carries; a *codec* is a
//! data format for a medium. The distinguished pseudo-codec [`Codec::NoMedia`]
//! indicates no media transmission: a descriptor offering only `NoMedia`
//! means "do not send to me" (muteIn), and a selector carrying `NoMedia`
//! means "I am not sending" (muteOut).

use std::fmt;

/// The medium of a media channel, chosen when the channel is opened.
///
/// Audio and video are the usual media, but the paper notes that quality
/// tiers, text, or combined encodings are also possible (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Medium {
    /// Audio (voice).
    Audio,
    /// Video.
    Video,
    /// High-definition variant of video (media may be subdivided by quality).
    VideoHd,
    /// Real-time text.
    Text,
    /// A single medium encoding audio and video together.
    AudioVideo,
}

impl fmt::Display for Medium {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Medium::Audio => "audio",
            Medium::Video => "video",
            Medium::VideoHd => "video-hd",
            Medium::Text => "text",
            Medium::AudioVideo => "audio+video",
        };
        f.write_str(s)
    }
}

/// A coder-decoder: the data format used in one direction of a media channel.
///
/// The two directions of a channel may use different codecs (§VI-A). Fidelity
/// and bandwidth figures follow the paper's examples: G.711 is the
/// higher-fidelity, higher-bandwidth audio codec (circuit-switched-telephony
/// quality); G.726 is lower-fidelity and lower-bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Codec {
    /// Distinguished pseudo-codec: no media transmission.
    NoMedia,
    /// ITU-T G.711 PCM audio, 64 kbit/s.
    G711,
    /// ITU-T G.726 ADPCM audio, 32 kbit/s.
    G726,
    /// ITU-T G.729 CS-ACELP audio, 8 kbit/s.
    G729,
    /// ITU-T H.261 video.
    H261,
    /// ITU-T H.263 video.
    H263,
    /// Plain UTF-8 text frames.
    T140,
}

impl Codec {
    /// The medium this codec encodes. `NoMedia` encodes none.
    pub fn medium(self) -> Option<Medium> {
        match self {
            Codec::NoMedia => None,
            Codec::G711 | Codec::G726 | Codec::G729 => Some(Medium::Audio),
            Codec::H261 | Codec::H263 => Some(Medium::Video),
            Codec::T140 => Some(Medium::Text),
        }
    }

    /// True for every codec except the `NoMedia` pseudo-codec.
    pub fn is_real(self) -> bool {
        self != Codec::NoMedia
    }

    /// Nominal bandwidth in kilobits per second (0 for `NoMedia`).
    ///
    /// Used by the simulated media plane to size packets; the control plane
    /// never depends on it.
    pub fn bandwidth_kbps(self) -> u32 {
        match self {
            Codec::NoMedia => 0,
            Codec::G711 => 64,
            Codec::G726 => 32,
            Codec::G729 => 8,
            Codec::H261 => 384,
            Codec::H263 => 512,
            Codec::T140 => 1,
        }
    }

    /// All real audio codecs in descending fidelity order.
    pub fn audio_all() -> &'static [Codec] {
        &[Codec::G711, Codec::G726, Codec::G729]
    }

    /// All real video codecs in descending fidelity order.
    pub fn video_all() -> &'static [Codec] {
        &[Codec::H263, Codec::H261]
    }
}

impl fmt::Display for Codec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Codec::NoMedia => "noMedia",
            Codec::G711 => "G.711",
            Codec::G726 => "G.726",
            Codec::G729 => "G.729",
            Codec::H261 => "H.261",
            Codec::H263 => "H.263",
            Codec::T140 => "T.140",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_media_is_not_real() {
        assert!(!Codec::NoMedia.is_real());
        assert!(Codec::G711.is_real());
    }

    #[test]
    fn codec_media_are_consistent() {
        for c in Codec::audio_all() {
            assert_eq!(c.medium(), Some(Medium::Audio));
        }
        for c in Codec::video_all() {
            assert_eq!(c.medium(), Some(Medium::Video));
        }
        assert_eq!(Codec::NoMedia.medium(), None);
        assert_eq!(Codec::T140.medium(), Some(Medium::Text));
    }

    #[test]
    fn g711_has_higher_fidelity_bandwidth_than_g726() {
        // The paper uses exactly this pair as its fidelity example (§VI-A).
        assert!(Codec::G711.bandwidth_kbps() > Codec::G726.bandwidth_kbps());
    }

    #[test]
    fn no_media_zero_bandwidth() {
        assert_eq!(Codec::NoMedia.bandwidth_kbps(), 0);
    }
}
