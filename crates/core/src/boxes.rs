//! The box: container of slots, goal objects, and the `Maps` association
//! between them (paper §VII, Fig. 11).
//!
//! A box receives signals from its tunnels, uses `Maps` to find the goal
//! object controlling the slot, shows the signal to the goal via the slot,
//! and transmits whatever the goal emits. High-level box programs manipulate
//! media only by re-assigning goals to slots ([`MediaBox::set_goal`]).

use crate::error::ProtocolError;
use crate::goal::{self, FlowLink, Goal, LinkSide, Outgoing, UserCmd, UserNote};
use crate::ids::{BoxId, SlotId};
use crate::signal::Signal;
use crate::slot::{Slot, SlotEvent, SlotState};
use ipmedia_obs::{NoopObserver, Observer};
use std::collections::BTreeMap;

/// Identity of a goal object within its box.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GoalId(pub u32);

/// What slots a goal controls.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Controlled {
    One(SlotId),
    Two(SlotId, SlotId),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct GoalEntry {
    goal: Goal,
    controls: Controlled,
}

/// Everything the box reports upward to its program / application logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoxNote {
    /// A slot event occurred (after the goal object reacted to it).
    Slot {
        /// The slot the event happened on.
        slot: SlotId,
        /// The event itself.
        event: SlotEvent,
    },
    /// A user-agent goal surfaced a Fig. 5 `?` event.
    User {
        /// The user-agent slot the note concerns.
        slot: SlotId,
        /// The surfaced note.
        note: UserNote,
    },
}

/// The desired goal for a slot (or pair), as written in a program-state
/// annotation (§IV-A).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GoalSpec {
    /// Annotate `slot` with an `openSlot` goal.
    Open {
        /// The slot to control.
        slot: SlotId,
        /// Medium to open.
        medium: crate::codec::Medium,
        /// Receiving policy of this end.
        policy: goal::Policy,
    },
    /// Annotate `slot` with a `closeSlot` goal.
    Close {
        /// The slot to control.
        slot: SlotId,
    },
    /// Annotate `slot` with a `holdSlot` goal.
    Hold {
        /// The slot to control.
        slot: SlotId,
        /// Receiving policy of this end while held.
        policy: goal::Policy,
    },
    /// Annotate `slot` with an interactive `userAgent` goal.
    User {
        /// The slot to control.
        slot: SlotId,
        /// The endpoint's media policy.
        policy: goal::EndpointPolicy,
        /// How incoming opens are answered.
        mode: goal::AcceptMode,
    },
    /// Annotate slots `a` and `b` with one `flowLink` goal.
    Link {
        /// One linked slot.
        a: SlotId,
        /// The other linked slot.
        b: SlotId,
    },
}

impl GoalSpec {
    fn slots(&self) -> Controlled {
        match *self {
            GoalSpec::Open { slot, .. }
            | GoalSpec::Close { slot }
            | GoalSpec::Hold { slot, .. }
            | GoalSpec::User { slot, .. } => Controlled::One(slot),
            GoalSpec::Link { a, b } => Controlled::Two(a, b),
        }
    }
}

/// A peer module involved in media control: slots + goals + maps.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MediaBox {
    id: BoxId,
    slots: BTreeMap<SlotId, Slot>,
    goals: BTreeMap<GoalId, GoalEntry>,
    /// The `Maps` object: dynamic association between slots and goals.
    maps: BTreeMap<SlotId, GoalId>,
    next_goal: u32,
    next_origin: u64,
}

impl MediaBox {
    /// New empty box with the given identity.
    pub fn new(id: BoxId) -> Self {
        Self {
            id,
            slots: BTreeMap::new(),
            goals: BTreeMap::new(),
            maps: BTreeMap::new(),
            next_goal: 0,
            next_origin: 0,
        }
    }

    /// This box's identity.
    pub fn id(&self) -> BoxId {
        self.id
    }

    /// Register a slot (one end of a tunnel). `initiator` must be true iff
    /// this box initiated setup of the slot's signaling channel.
    pub fn add_slot(&mut self, id: SlotId, initiator: bool) {
        let prev = self.slots.insert(id, Slot::new(initiator));
        assert!(prev.is_none(), "slot {id} already exists");
    }

    /// Destroy a slot (its signaling channel was torn down). Any goal
    /// controlling it dies; a flowlink's other slot becomes uncontrolled.
    pub fn remove_slot(&mut self, id: SlotId) {
        self.slots.remove(&id);
        self.drop_goal_of(id);
    }

    /// Read access to a slot, for guard predicates.
    pub fn slot(&self, id: SlotId) -> Option<&Slot> {
        self.slots.get(&id)
    }

    /// All registered slot ids, in order.
    pub fn slot_ids(&self) -> impl Iterator<Item = SlotId> + '_ {
        self.slots.keys().copied()
    }

    /// The goal currently controlling a slot, if any.
    pub fn goal_of(&self, id: SlotId) -> Option<&Goal> {
        self.maps
            .get(&id)
            .and_then(|g| self.goals.get(g))
            .map(|e| &e.goal)
    }

    /// Mint a tag origin unique within the system (box id in the high bits).
    fn fresh_origin(&mut self) -> u64 {
        let o = (u64::from(self.id.0) << 24) | self.next_origin;
        self.next_origin += 1;
        o
    }

    fn drop_goal_of(&mut self, slot: SlotId) {
        self.drop_goal_of_obs(slot, &mut NoopObserver);
    }

    fn drop_goal_of_obs<O: Observer + ?Sized>(&mut self, slot: SlotId, obs: &mut O) {
        if let Some(gid) = self.maps.remove(&slot) {
            if let Some(entry) = self.goals.remove(&gid) {
                obs.goal_dropped(self.id.0, slot.0, entry.goal.kind());
                // A flowlink's other slot loses its controller too; the
                // program must assign it a new goal.
                if let Controlled::Two(a, b) = entry.controls {
                    let other = if a == slot { b } else { a };
                    self.maps.remove(&other);
                }
            }
        }
    }

    /// Snapshot the protocol states of the slots a change may touch, for
    /// transition reporting.
    fn states_of(&self, slots: &[SlotId]) -> Vec<(SlotId, SlotState)> {
        slots
            .iter()
            .filter_map(|s| self.slots.get(s).map(|slot| (*s, slot.state())))
            .collect()
    }

    /// Report every state change relative to `before` with the given cause.
    fn observe_transitions<O: Observer + ?Sized>(
        &self,
        obs: &mut O,
        before: &[(SlotId, SlotState)],
        cause: &'static str,
    ) {
        for (slot, was) in before {
            if let Some(now) = self.slots.get(slot).map(super::slot::Slot::state) {
                if now != *was {
                    obs.slot_transition(self.id.0, slot.0, was.name(), now.name(), cause);
                }
            }
        }
    }

    /// Report protocol-level meanings of a slot event: races and tolerated
    /// (idempotently dropped) signals.
    fn observe_event<O: Observer + ?Sized>(&self, obs: &mut O, slot: SlotId, event: &SlotEvent) {
        match event {
            SlotEvent::RaceBackoff { .. } => obs.race_resolved(self.id.0, slot.0, false),
            SlotEvent::RaceIgnored => obs.race_resolved(self.id.0, slot.0, true),
            SlotEvent::Ignored(reason) => obs.signal_ignored(self.id.0, slot.0, reason),
            _ => {}
        }
    }

    /// Put slots under the control of a new goal object, as a program-state
    /// annotation does. Returns the signals the new goal emits on gaining
    /// control. Reassignment destroys the slots' previous goal objects
    /// ("the slots are moved elsewhere and this goal object becomes
    /// garbage", §VII).
    pub fn set_goal(&mut self, spec: GoalSpec) -> Vec<Outgoing> {
        self.set_goal_obs(spec, &mut NoopObserver)
    }

    /// [`MediaBox::set_goal`] with observability: reports the dropped and
    /// activated goals and any slot transitions the new goal causes.
    pub fn set_goal_obs<O: Observer + ?Sized>(
        &mut self,
        spec: GoalSpec,
        obs: &mut O,
    ) -> Vec<Outgoing> {
        let controls = spec.slots();
        let watched = match controls {
            Controlled::One(s) => vec![s],
            Controlled::Two(a, b) => vec![a, b],
        };
        let before = self.states_of(&watched);
        match controls {
            Controlled::One(s) => {
                assert!(self.slots.contains_key(&s), "unknown slot {s}");
                self.drop_goal_of_obs(s, obs);
            }
            Controlled::Two(a, b) => {
                assert!(a != b, "flowLink needs two distinct slots");
                assert!(self.slots.contains_key(&a), "unknown slot {a}");
                assert!(self.slots.contains_key(&b), "unknown slot {b}");
                self.drop_goal_of_obs(a, obs);
                self.drop_goal_of_obs(b, obs);
            }
        }
        let origin = self.fresh_origin();
        let mut new_goal = match &spec {
            GoalSpec::Open { medium, policy, .. } => {
                Goal::Open(goal::OpenSlot::with_policy(*medium, policy.clone(), origin))
            }
            GoalSpec::Close { .. } => Goal::Close(goal::CloseSlot::new()),
            GoalSpec::Hold { policy, .. } => {
                Goal::Hold(goal::HoldSlot::with_policy(policy.clone(), origin))
            }
            GoalSpec::User { policy, mode, .. } => {
                Goal::User(goal::UserAgent::new(policy.clone(), *mode, origin))
            }
            GoalSpec::Link { .. } => Goal::Link(FlowLink::new(origin)),
        };

        let out = match controls {
            Controlled::One(s) => {
                let slot = self.slots.get_mut(&s).expect("checked above");
                goal::attach_single(&mut new_goal, slot)
                    .into_iter()
                    .map(|signal| Outgoing { slot: s, signal })
                    .collect()
            }
            Controlled::Two(a, b) => {
                let (mut sa, mut sb) = self.take_two(a, b);
                let Goal::Link(link) = &mut new_goal else {
                    unreachable!()
                };
                let out = link
                    .attach(&mut sa, &mut sb)
                    .into_iter()
                    .map(|(side, signal)| Outgoing {
                        slot: if side == LinkSide::A { a } else { b },
                        signal,
                    })
                    .collect();
                self.put_two(a, sa, b, sb);
                out
            }
        };

        let gid = GoalId(self.next_goal);
        self.next_goal += 1;
        match controls {
            Controlled::One(s) => {
                self.maps.insert(s, gid);
            }
            Controlled::Two(a, b) => {
                self.maps.insert(a, gid);
                self.maps.insert(b, gid);
            }
        }
        obs.goal_activated(self.id.0, watched[0].0, new_goal.kind());
        self.goals.insert(
            gid,
            GoalEntry {
                goal: new_goal,
                controls,
            },
        );
        self.observe_transitions(obs, &before, "goal");
        out
    }

    /// Deliver one tunnel signal to its slot and the controlling goal.
    pub fn on_signal(&mut self, slot_id: SlotId, signal: Signal) -> (Vec<Outgoing>, Vec<BoxNote>) {
        self.on_signal_obs(slot_id, signal, &mut NoopObserver)
    }

    /// [`MediaBox::on_signal`] with observability: reports the received
    /// signal, any slot transitions it causes (across both slots of a
    /// flowlink), resolved open/open races, and tolerated stale signals.
    pub fn on_signal_obs<O: Observer + ?Sized>(
        &mut self,
        slot_id: SlotId,
        signal: Signal,
        obs: &mut O,
    ) -> (Vec<Outgoing>, Vec<BoxNote>) {
        let kind = signal.kind();
        obs.signal_received(self.id.0, slot_id.0, kind);
        let watched = match self.maps.get(&slot_id).and_then(|g| self.goals.get(g)) {
            Some(GoalEntry {
                controls: Controlled::Two(a, b),
                ..
            }) => vec![*a, *b],
            _ => vec![slot_id],
        };
        let before = self.states_of(&watched);
        let (out, notes) = self.on_signal_inner(slot_id, signal);
        self.observe_transitions(obs, &before, kind);
        for note in &notes {
            if let BoxNote::Slot { slot, event } = note {
                self.observe_event(obs, *slot, event);
            }
        }
        (out, notes)
    }

    fn on_signal_inner(
        &mut self,
        slot_id: SlotId,
        signal: Signal,
    ) -> (Vec<Outgoing>, Vec<BoxNote>) {
        let Some(gid) = self.maps.get(&slot_id).copied() else {
            // Uncontrolled slot: apply protocol-mandated auto responses
            // only, and surface the event so the program can react.
            let Some(slot) = self.slots.get_mut(&slot_id) else {
                return (vec![], vec![]);
            };
            let (event, auto) = slot.on_signal(signal);
            let out = auto
                .into_iter()
                .map(|signal| Outgoing {
                    slot: slot_id,
                    signal,
                })
                .collect();
            return (
                out,
                vec![BoxNote::Slot {
                    slot: slot_id,
                    event,
                }],
            );
        };

        let entry = self.goals.get(&gid).expect("maps points at live goal");
        match entry.controls {
            Controlled::One(s) => {
                debug_assert_eq!(s, slot_id);
                let slot = self.slots.get_mut(&s).expect("slot exists");
                let (event, auto) = slot.on_signal(signal);
                let mut out: Vec<Outgoing> = auto
                    .into_iter()
                    .map(|signal| Outgoing { slot: s, signal })
                    .collect();
                let entry = self.goals.get_mut(&gid).expect("goal exists");
                let (sigs, user_notes) = goal::on_event_single(&mut entry.goal, &event, slot);
                out.extend(sigs.into_iter().map(|signal| Outgoing { slot: s, signal }));
                let mut notes = vec![BoxNote::Slot { slot: s, event }];
                notes.extend(
                    user_notes
                        .into_iter()
                        .map(|note| BoxNote::User { slot: s, note }),
                );
                (out, notes)
            }
            Controlled::Two(a, b) => {
                let side = if slot_id == a {
                    LinkSide::A
                } else {
                    LinkSide::B
                };
                let (mut sa, mut sb) = self.take_two(a, b);
                let target = if side == LinkSide::A {
                    &mut sa
                } else {
                    &mut sb
                };
                let (event, auto) = target.on_signal(signal);
                let mut out: Vec<Outgoing> = auto
                    .into_iter()
                    .map(|signal| Outgoing {
                        slot: slot_id,
                        signal,
                    })
                    .collect();
                let entry = self.goals.get_mut(&gid).expect("goal exists");
                let Goal::Link(link) = &mut entry.goal else {
                    unreachable!("two-slot goal is a flowlink")
                };
                out.extend(
                    link.on_event(side, &event, &mut sa, &mut sb)
                        .into_iter()
                        .map(|(s, signal)| Outgoing {
                            slot: if s == LinkSide::A { a } else { b },
                            signal,
                        }),
                );
                self.put_two(a, sa, b, sb);
                (
                    out,
                    vec![BoxNote::Slot {
                        slot: slot_id,
                        event,
                    }],
                )
            }
        }
    }

    /// Issue a Fig. 5 user command to a user-agent-controlled slot.
    pub fn user(&mut self, slot_id: SlotId, cmd: UserCmd) -> Result<Vec<Outgoing>, ProtocolError> {
        self.user_obs(slot_id, cmd, &mut NoopObserver)
    }

    /// [`MediaBox::user`] with observability: reports any slot transition
    /// the command causes, with cause `"user"`.
    pub fn user_obs<O: Observer + ?Sized>(
        &mut self,
        slot_id: SlotId,
        cmd: UserCmd,
        obs: &mut O,
    ) -> Result<Vec<Outgoing>, ProtocolError> {
        let before = self.states_of(&[slot_id]);
        let out = self.user_inner(slot_id, cmd);
        if out.is_ok() {
            self.observe_transitions(obs, &before, "user");
        }
        out
    }

    fn user_inner(
        &mut self,
        slot_id: SlotId,
        cmd: UserCmd,
    ) -> Result<Vec<Outgoing>, ProtocolError> {
        let gid = self
            .maps
            .get(&slot_id)
            .copied()
            .ok_or(ProtocolError::InvalidRecord("slot has no goal"))?;
        let entry = self.goals.get_mut(&gid).expect("maps points at live goal");
        let Goal::User(agent) = &mut entry.goal else {
            return Err(ProtocolError::InvalidRecord(
                "user commands require a userAgent goal",
            ));
        };
        let slot = self.slots.get_mut(&slot_id).expect("slot exists");
        Ok(agent
            .command(cmd, slot)?
            .into_iter()
            .map(|signal| Outgoing {
                slot: slot_id,
                signal,
            })
            .collect())
    }

    /// Update the endpoint policy of a user-agent slot via a modify event.
    pub fn user_modify(
        &mut self,
        slot_id: SlotId,
        mute_in: bool,
        mute_out: bool,
    ) -> Result<Vec<Outgoing>, ProtocolError> {
        self.user(slot_id, UserCmd::Modify { mute_in, mute_out })
    }

    fn take_two(&mut self, a: SlotId, b: SlotId) -> (Slot, Slot) {
        let sa = self.slots.remove(&a).expect("slot a exists");
        let sb = self.slots.remove(&b).expect("slot b exists");
        (sa, sb)
    }

    fn put_two(&mut self, a: SlotId, sa: Slot, b: SlotId, sb: Slot) {
        self.slots.insert(a, sa);
        self.slots.insert(b, sb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Medium;
    use crate::descriptor::MediaAddr;
    use crate::goal::{AcceptMode, EndpointPolicy, Policy};
    use crate::slot::SlotState;

    fn server_box() -> MediaBox {
        let mut b = MediaBox::new(BoxId(1));
        b.add_slot(SlotId(0), true);
        b.add_slot(SlotId(1), true);
        b
    }

    #[test]
    fn set_goal_open_emits_open() {
        let mut b = server_box();
        let out = b.set_goal(GoalSpec::Open {
            slot: SlotId(0),
            medium: Medium::Audio,
            policy: Policy::Server,
        });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].slot, SlotId(0));
        assert!(matches!(out[0].signal, Signal::Open { .. }));
        assert_eq!(b.slot(SlotId(0)).unwrap().state(), SlotState::Opening);
        assert_eq!(b.goal_of(SlotId(0)).unwrap().kind(), "openSlot");
    }

    #[test]
    fn reassignment_replaces_goal() {
        let mut b = server_box();
        b.set_goal(GoalSpec::Open {
            slot: SlotId(0),
            medium: Medium::Audio,
            policy: Policy::Server,
        });
        let out = b.set_goal(GoalSpec::Close { slot: SlotId(0) });
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].signal, Signal::Close);
        assert_eq!(b.goal_of(SlotId(0)).unwrap().kind(), "closeSlot");
    }

    #[test]
    fn flowlink_controls_two_slots_and_breaks_on_reassignment() {
        let mut b = server_box();
        b.set_goal(GoalSpec::Link {
            a: SlotId(0),
            b: SlotId(1),
        });
        assert_eq!(b.goal_of(SlotId(0)).unwrap().kind(), "flowLink");
        assert_eq!(b.goal_of(SlotId(1)).unwrap().kind(), "flowLink");
        // Reassigning one slot destroys the link; the other slot is left
        // uncontrolled until the program assigns it.
        b.set_goal(GoalSpec::Hold {
            slot: SlotId(0),
            policy: Policy::Server,
        });
        assert_eq!(b.goal_of(SlotId(0)).unwrap().kind(), "holdSlot");
        assert!(b.goal_of(SlotId(1)).is_none());
    }

    #[test]
    fn signal_through_flowlink_is_forwarded() {
        let mut b = server_box();
        b.set_goal(GoalSpec::Link {
            a: SlotId(0),
            b: SlotId(1),
        });
        let mut tags = crate::descriptor::TagSource::new(77);
        let desc = crate::descriptor::Descriptor::media(
            tags.next(),
            MediaAddr::v4(10, 0, 0, 9, 4000),
            vec![crate::codec::Codec::G711],
        );
        let (out, notes) = b.on_signal(
            SlotId(0),
            Signal::Open {
                medium: Medium::Audio,
                desc,
            },
        );
        assert!(out
            .iter()
            .any(|o| o.slot == SlotId(1) && matches!(o.signal, Signal::Open { .. })));
        assert_eq!(notes.len(), 1);
    }

    #[test]
    fn uncontrolled_slot_still_auto_acks_close() {
        let mut b = server_box();
        // No goal assigned; an incoming open is surfaced but unanswered.
        let mut tags = crate::descriptor::TagSource::new(77);
        let desc = crate::descriptor::Descriptor::no_media(tags.next());
        let (out, notes) = b.on_signal(
            SlotId(0),
            Signal::Open {
                medium: Medium::Audio,
                desc,
            },
        );
        assert!(out.is_empty());
        assert!(matches!(
            notes[0],
            BoxNote::Slot {
                event: SlotEvent::OpenReceived { .. },
                ..
            }
        ));
        // And a close gets its mandatory ack even without a goal.
        let (out, _) = b.on_signal(SlotId(0), Signal::Close);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].signal, Signal::CloseAck);
    }

    #[test]
    fn user_agent_via_box() {
        let mut b = MediaBox::new(BoxId(5));
        b.add_slot(SlotId(0), true);
        b.set_goal(GoalSpec::User {
            slot: SlotId(0),
            policy: EndpointPolicy::audio(MediaAddr::v4(10, 0, 0, 5, 4000)),
            mode: AcceptMode::Auto,
        });
        let out = b.user(SlotId(0), UserCmd::Open(Medium::Audio)).unwrap();
        assert!(matches!(out[0].signal, Signal::Open { .. }));
        // User commands on non-user goals are rejected.
        let mut srv = server_box();
        srv.set_goal(GoalSpec::Close { slot: SlotId(0) });
        assert!(srv.user(SlotId(0), UserCmd::Close).is_err());
    }

    #[test]
    fn tag_origins_are_unique_per_goal() {
        let mut b = server_box();
        let o1 = b.set_goal(GoalSpec::Open {
            slot: SlotId(0),
            medium: Medium::Audio,
            policy: Policy::Server,
        });
        let o2 = b.set_goal(GoalSpec::Open {
            slot: SlotId(1),
            medium: Medium::Audio,
            policy: Policy::Server,
        });
        let t1 = match &o1[0].signal {
            Signal::Open { desc, .. } => desc.tag,
            _ => unreachable!(),
        };
        let t2 = match &o2[0].signal {
            Signal::Open { desc, .. } => desc.tag,
            _ => unreachable!(),
        };
        assert_ne!(t1.origin, t2.origin);
    }

    #[test]
    fn observer_sees_goals_transitions_and_races() {
        use ipmedia_obs::{ManualClock, ObsEvent, RecordingObserver};
        use std::sync::Arc;

        let mut obs = RecordingObserver::new(Arc::new(ManualClock::new()));
        let log = obs.log();

        let mut b = server_box();
        b.set_goal_obs(
            GoalSpec::Open {
                slot: SlotId(0),
                medium: Medium::Audio,
                policy: Policy::Server,
            },
            &mut obs,
        );
        // Re-annotating drops the old goal and activates the new one.
        b.set_goal_obs(GoalSpec::Close { slot: SlotId(0) }, &mut obs);
        // An open arriving while Opening at the channel initiator is a won
        // race... but the goal is now closeSlot, so drive a fresh slot.
        let mut tags = crate::descriptor::TagSource::new(3);
        let desc = crate::descriptor::Descriptor::no_media(tags.next());
        b.on_signal_obs(
            SlotId(1),
            Signal::Open {
                medium: Medium::Audio,
                desc,
            },
            &mut obs,
        );

        let events: Vec<ObsEvent> = log.lock().unwrap().iter().map(|(_, e)| e.clone()).collect();
        assert!(events.contains(&ObsEvent::GoalActivated {
            bx: 1,
            slot: 0,
            kind: "openSlot"
        }));
        assert!(events.contains(&ObsEvent::SlotTransition {
            bx: 1,
            slot: 0,
            from: "closed",
            to: "opening",
            cause: "goal",
        }));
        assert!(events.contains(&ObsEvent::GoalDropped {
            bx: 1,
            slot: 0,
            kind: "openSlot"
        }));
        assert!(events.contains(&ObsEvent::GoalActivated {
            bx: 1,
            slot: 0,
            kind: "closeSlot"
        }));
        assert!(events.contains(&ObsEvent::SignalReceived {
            bx: 1,
            slot: 1,
            kind: "open"
        }));
        assert!(events.contains(&ObsEvent::SlotTransition {
            bx: 1,
            slot: 1,
            from: "closed",
            to: "opened",
            cause: "open",
        }));
    }

    #[test]
    fn observer_reports_open_open_race() {
        use ipmedia_obs::{ManualClock, ObsEvent, RecordingObserver};
        use std::sync::Arc;

        let mut obs = RecordingObserver::new(Arc::new(ManualClock::new()));
        let log = obs.log();

        // Loser side: not the channel initiator, already Opening.
        let mut b = MediaBox::new(BoxId(2));
        b.add_slot(SlotId(0), false);
        b.set_goal_obs(
            GoalSpec::Open {
                slot: SlotId(0),
                medium: Medium::Audio,
                policy: Policy::Server,
            },
            &mut obs,
        );
        let mut tags = crate::descriptor::TagSource::new(9);
        let desc = crate::descriptor::Descriptor::no_media(tags.next());
        b.on_signal_obs(
            SlotId(0),
            Signal::Open {
                medium: Medium::Audio,
                desc,
            },
            &mut obs,
        );

        let events: Vec<ObsEvent> = log.lock().unwrap().iter().map(|(_, e)| e.clone()).collect();
        assert!(events.contains(&ObsEvent::RaceResolved {
            bx: 2,
            slot: 0,
            won: false
        }));
        // The openSlot goal reacts to the backoff within the same stimulus
        // (it accepts the winning open), so the transition the observer
        // reports is the net one: opening straight to flowing.
        assert!(events.contains(&ObsEvent::SlotTransition {
            bx: 2,
            slot: 0,
            from: "opening",
            to: "flowing",
            cause: "open",
        }));
    }

    #[test]
    fn remove_slot_kills_goal() {
        let mut b = server_box();
        b.set_goal(GoalSpec::Link {
            a: SlotId(0),
            b: SlotId(1),
        });
        b.remove_slot(SlotId(0));
        assert!(b.slot(SlotId(0)).is_none());
        assert!(b.goal_of(SlotId(1)).is_none());
    }
}
