//! Property tests for freshness-tag comparison (§VI-B, §VII).
//!
//! Descriptors are unilateral and cacheable, so the network may replay
//! arbitrarily old copies of them — and of the selectors that answer
//! them. The slot's only defense is the tag algebra: a selector is fresh
//! iff it answers the *current* sent descriptor's tag, and a descriptor
//! from a known origin is stale iff its generation is below the cached
//! one. These tests drive random signal histories through a real
//! [`Slot`] and check the invariants the retransmission layer depends
//! on: stale input never overwrites fresh state, whatever the order.

use ipmedia_core::{
    Codec, DescTag, Descriptor, MediaAddr, Medium, Selector, Signal, Slot, SlotEvent, SlotState,
};
use proptest::prelude::*;

/// Tags drawn from a handful of origins and small generations, so random
/// histories collide often enough to exercise every comparison branch.
fn arb_tag() -> impl Strategy<Value = DescTag> {
    (any::<u8>(), any::<u8>()).prop_map(|(o, g)| DescTag {
        origin: (o % 4) as u64,
        generation: (g % 8) as u32,
    })
}

fn arb_selector() -> impl Strategy<Value = Selector> {
    (arb_tag(), any::<bool>(), any::<u16>()).prop_map(|(tag, sending, port)| {
        if sending {
            Selector::sending(tag, MediaAddr::v4(10, 9, 9, 9, port | 1), Codec::G711)
        } else {
            Selector::not_sending(tag)
        }
    })
}

/// A flowing slot whose current sent descriptor carries `tag`.
fn flowing_slot(tag: DescTag, peer: DescTag) -> Slot {
    let mut s = Slot::new(true);
    let d = Descriptor::media(tag, MediaAddr::v4(10, 0, 0, 1, 4000), vec![Codec::G711]);
    s.send_open(Medium::Audio, d).expect("closed slot opens");
    let pd = Descriptor::media(peer, MediaAddr::v4(10, 0, 0, 2, 4000), vec![Codec::G711]);
    s.on_signal(Signal::Oack { desc: pd });
    assert_eq!(s.state(), SlotState::Flowing);
    s
}

const MINE: DescTag = DescTag {
    origin: 100,
    generation: 3,
};
const PEER: DescTag = DescTag {
    origin: 200,
    generation: 0,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn stale_selector_never_overwrites_fresh_state(sels in proptest::collection::vec(arb_selector(), 1..24)) {
        // Once a fresh answer (to the current descriptor) is cached, no
        // replayed selector with any other tag may replace it.
        let mut s = flowing_slot(MINE, PEER);
        let fresh = Selector::not_sending(MINE);
        s.on_signal(Signal::Select { sel: fresh.clone() });
        prop_assert_eq!(s.peer_sel(), Some(&fresh));
        for sel in sels {
            let stale = sel.answers != MINE;
            let (ev, auto) = s.on_signal(Signal::Select { sel: sel.clone() });
            prop_assert!(auto.is_empty());
            if stale {
                prop_assert!(matches!(ev, SlotEvent::Ignored(_)), "stale {sel} accepted");
            } else {
                prop_assert!(matches!(ev, SlotEvent::Selected { fresh: true }));
            }
            // The invariant proper: whatever arrived, the cached answer
            // still answers the current descriptor.
            prop_assert_eq!(s.peer_sel().map(|p| p.answers), Some(MINE));
        }
    }

    #[test]
    fn fresh_selector_is_always_accepted(before in proptest::collection::vec(arb_selector(), 0..16)) {
        // However much stale noise arrived first, a selector answering the
        // current descriptor is stored the moment it lands.
        let mut s = flowing_slot(MINE, PEER);
        for sel in before {
            s.on_signal(Signal::Select { sel });
        }
        let fresh = Selector::sending(MINE, MediaAddr::v4(10, 0, 0, 2, 5002), Codec::G711);
        let (ev, _) = s.on_signal(Signal::Select { sel: fresh.clone() });
        prop_assert!(matches!(ev, SlotEvent::Selected { fresh: true }));
        prop_assert_eq!(s.peer_sel(), Some(&fresh));
    }

    #[test]
    fn peer_descriptor_generation_never_regresses(gens in proptest::collection::vec(any::<u8>(), 1..24)) {
        // Replayed describes from the peer's origin: the cached generation
        // is monotone, and always the max seen so far.
        let mut s = flowing_slot(MINE, PEER);
        let mut max_seen = PEER.generation;
        for g in gens {
            let g = (g % 8) as u32;
            let tag = DescTag { origin: PEER.origin, generation: g };
            let d = Descriptor::media(tag, MediaAddr::v4(10, 0, 0, 2, 4000), vec![Codec::G726]);
            let (ev, _) = s.on_signal(Signal::Describe { desc: d });
            if g < max_seen {
                prop_assert!(matches!(ev, SlotEvent::Ignored(_)), "gen {g} < {max_seen} accepted");
            } else {
                prop_assert!(matches!(ev, SlotEvent::Described));
                max_seen = g;
            }
            prop_assert_eq!(s.peer_desc().map(|d| d.tag.generation), Some(max_seen));
        }
    }

    #[test]
    fn selector_validity_requires_exact_tag_match(a in arb_tag(), b in arb_tag()) {
        let d = Descriptor::media(a, MediaAddr::v4(10, 0, 0, 1, 4000), vec![Codec::G711]);
        let sel = Selector::sending(b, MediaAddr::v4(10, 0, 0, 2, 4000), Codec::G711);
        prop_assert_eq!(sel.answers_validly(&d), a == b);
        // not_sending is the universal answer shape: valid iff tags match.
        let quiet = Selector::not_sending(b);
        prop_assert_eq!(quiet.answers_validly(&d), a == b);
    }

    #[test]
    fn any_selector_history_leaves_fresh_state_if_one_was_fresh(
        sels in proptest::collection::vec(arb_selector(), 0..24),
        force_fresh_at in any::<u8>(),
    ) {
        // Mixed histories: if at least one delivered selector answered the
        // current descriptor, the slot ends converged on a fresh answer.
        let mut s = flowing_slot(MINE, PEER);
        let mut sels = sels;
        if !sels.is_empty() {
            let i = force_fresh_at as usize % sels.len();
            sels[i].answers = MINE;
        }
        let any_fresh = sels.iter().any(|sel| sel.answers == MINE);
        for sel in sels {
            s.on_signal(Signal::Select { sel });
        }
        if any_fresh {
            prop_assert_eq!(s.peer_sel().map(|p| p.answers), Some(MINE));
        }
    }
}
