#!/usr/bin/env bash
# Workspace gate: formatting, lints, tests. Run before every push.
#
# Usage: scripts/check.sh [--offline]
#
# Any argument is forwarded to cargo (the CI container builds with
# --offline against the vendored shims).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check" >&2
cargo fmt --all -- --check

echo "== cargo clippy -D warnings" >&2
cargo clippy "$@" --workspace --all-targets -- -D warnings

echo "== cargo test" >&2
cargo test "$@" --workspace -q

echo "== ipmedia-lint (static analysis over all example models)" >&2
# All passes (AZ1xx–AZ6xx) at deny level, parallel with deterministic
# output, gated against the committed baseline; the SARIF log is a build
# artifact for CI code-scanning upload.
mkdir -p target
cargo run "$@" -q -p ipmedia-analyze --bin ipmedia-lint -- \
  --all-examples --deny warnings --threads "$(nproc)" \
  --baseline lint-baseline.txt --sarif target/ipmedia-lint.sarif

echo "== differential validation (analyzer clean => no mck counterexample)" >&2
# Cross-checks every analyzer-clean scenario's covered path classes
# against the model checker and refreshes BENCH_differential.jsonl; the
# matrix carries no wall-clock fields, so a dirty diff after this step
# means the coverage or verdicts actually changed.
cargo build "$@" --release -q -p ipmedia-bench --bin differential
DIFF_BUDGET_SECS="${DIFF_BUDGET_SECS:-240}"
timeout "$DIFF_BUDGET_SECS" ./target/release/differential --threads "$(nproc)" >/dev/null || {
  status=$?
  if [ "$status" -eq 124 ]; then
    echo "differential exceeded the ${DIFF_BUDGET_SECS}s wall-clock budget" >&2
  else
    echo "differential failed (exit $status)" >&2
  fi
  exit "$status"
}

echo "== fault-matrix smoke (loss x dup/reorder, bounded virtual time)" >&2
cargo run "$@" -q -p ipmedia-bench --bin fault_matrix -- --threads "$(nproc)" >/dev/null

echo "== verification campaign (parallel, wall-clock budget)" >&2
# The 12-model §VIII-A campaign at CI budgets, spread over all cores.
# `timeout` enforces the wall-clock budget: a throughput regression in the
# exploration engine fails the gate instead of silently slowing CI down.
cargo build "$@" --release -q -p ipmedia-mck --bin campaign
CAMPAIGN_BUDGET_SECS="${CAMPAIGN_BUDGET_SECS:-300}"
timeout "$CAMPAIGN_BUDGET_SECS" ./target/release/campaign 0 1 2000000 --threads "$(nproc)" >/dev/null || {
  status=$?
  if [ "$status" -eq 124 ]; then
    echo "campaign exceeded the ${CAMPAIGN_BUDGET_SECS}s wall-clock budget" >&2
  else
    echo "campaign failed (exit $status)" >&2
  fi
  exit "$status"
}

echo "all checks passed" >&2
