#!/usr/bin/env bash
# Workspace gate: formatting, lints, tests. Run before every push.
#
# Usage: scripts/check.sh [--offline]
#
# Any argument is forwarded to cargo (the CI container builds with
# --offline against the vendored shims).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check" >&2
cargo fmt --all -- --check

echo "== cargo clippy -D warnings" >&2
cargo clippy "$@" --workspace --all-targets -- -D warnings

echo "== cargo test" >&2
cargo test "$@" --workspace -q

echo "== ipmedia-lint (static analysis over all example models)" >&2
# All passes (AZ1xx–AZ6xx) at deny level, parallel with deterministic
# output, gated against the committed baseline; the SARIF log is a build
# artifact for CI code-scanning upload.
mkdir -p target
cargo run "$@" -q -p ipmedia-analyze --bin ipmedia-lint -- \
  --all-examples --deny warnings --threads "$(nproc)" \
  --baseline lint-baseline.txt --sarif target/ipmedia-lint.sarif

echo "== differential validation (analyzer clean => no mck counterexample)" >&2
# Cross-checks every analyzer-clean scenario's covered path classes
# against the model checker and refreshes BENCH_differential.jsonl; the
# matrix carries no wall-clock fields, so a dirty diff after this step
# means the coverage or verdicts actually changed.
cargo build "$@" --release -q -p ipmedia-bench --bin differential
DIFF_BUDGET_SECS="${DIFF_BUDGET_SECS:-240}"
timeout "$DIFF_BUDGET_SECS" ./target/release/differential --threads "$(nproc)" >/dev/null || {
  status=$?
  if [ "$status" -eq 124 ]; then
    echo "differential exceeded the ${DIFF_BUDGET_SECS}s wall-clock budget" >&2
  else
    echo "differential failed (exit $status)" >&2
  fi
  exit "$status"
}

echo "== property-based fuzz (generator -> analyzer <-> checker oracle)" >&2
# A fixed-seed slice of the differential fuzz campaign: seeded scenarios
# through the round-trip, soundness, and completeness oracles. Any
# divergence prints its delta-minimized .ipm reproducer on stderr (and
# the seed to replay with `ipmedia-lint --fuzz`); refreshes
# BENCH_fuzz.json, which carries no wall-clock fields.
cargo build "$@" --release -q -p ipmedia-bench --bin fuzz_differential
FUZZ_BUDGET_SECS="${FUZZ_BUDGET_SECS:-300}"
timeout "$FUZZ_BUDGET_SECS" ./target/release/fuzz_differential --threads "$(nproc)" >/dev/null || {
  status=$?
  if [ "$status" -eq 124 ]; then
    echo "fuzz_differential exceeded the ${FUZZ_BUDGET_SECS}s wall-clock budget" >&2
  else
    echo "fuzz_differential found analyzer<->checker divergences (exit $status)" >&2
  fi
  exit "$status"
}

echo "== fault-matrix smoke (loss x dup/reorder, bounded virtual time)" >&2
cargo run "$@" -q -p ipmedia-bench --bin fault_matrix -- --threads "$(nproc)" >/dev/null

echo "== verification campaign (parallel, wall-clock budget)" >&2
# The 12-model §VIII-A campaign at CI budgets, spread over all cores.
# `timeout` enforces the wall-clock budget: a throughput regression in the
# exploration engine fails the gate instead of silently slowing CI down.
cargo build "$@" --release -q -p ipmedia-mck --bin campaign
CAMPAIGN_BUDGET_SECS="${CAMPAIGN_BUDGET_SECS:-300}"
timeout "$CAMPAIGN_BUDGET_SECS" ./target/release/campaign 0 1 2000000 --threads "$(nproc)" >/dev/null || {
  status=$?
  if [ "$status" -eq 124 ]; then
    echo "campaign exceeded the ${CAMPAIGN_BUDGET_SECS}s wall-clock budget" >&2
  else
    echo "campaign failed (exit $status)" >&2
  fi
  exit "$status"
}

echo "== tracing overhead (zero perturbation + wall-clock budget)" >&2
# Asserts virtual-time latencies are identical traced vs. untraced (hard
# failure) and that the tracer's wall-clock cost stays within
# TRACE_OVERHEAD_BUDGET_PCT; rewrites BENCH_trace.json.
cargo run "$@" --release -q -p ipmedia-bench --bin trace_overhead >/dev/null

echo "== runtime invariant monitor (all scenarios clean + mutant self-test)" >&2
# Every registry scenario must run clean under the live monitor, and the
# planted closed-slot mutant must be flagged as IM102 — proving the gate
# can actually fail.
cargo build "$@" --release -q -p ipmedia-bench --bin ipmedia-monitor
MONITOR_BUDGET_SECS="${MONITOR_BUDGET_SECS:-120}"
timeout "$MONITOR_BUDGET_SECS" ./target/release/ipmedia-monitor >/dev/null || {
  status=$?
  if [ "$status" -eq 124 ]; then
    echo "monitor exceeded the ${MONITOR_BUDGET_SECS}s wall-clock budget" >&2
  else
    echo "monitor found invariant violations (exit $status)" >&2
  fi
  exit "$status"
}
timeout "$MONITOR_BUDGET_SECS" ./target/release/ipmedia-monitor --mutant closed-slot \
  >/dev/null 2>/dev/null || {
  status=$?
  if [ "$status" -eq 124 ]; then
    echo "monitor mutant self-test exceeded the ${MONITOR_BUDGET_SECS}s budget" >&2
  else
    echo "monitor failed to catch the planted closed-slot mutant (exit $status)" >&2
  fi
  exit "$status"
}

echo "== chaos campaign (seeded schedules, monitor-verified recovery)" >&2
# Seeded fault schedules across every registry scenario and schedule
# family on the simulator plus a compressed sweep on the live runtime;
# any post-heal invariant violation fails the gate and the bin prints
# the failing seed with its delta-debugged minimal schedule on stderr.
# Rewrites BENCH_chaos.json.
cargo build "$@" --release -q -p ipmedia-bench --bin chaos_campaign
CHAOS_BUDGET_SECS="${CHAOS_BUDGET_SECS:-240}"
timeout "$CHAOS_BUDGET_SECS" ./target/release/chaos_campaign --threads "$(nproc)" >/dev/null || {
  status=$?
  if [ "$status" -eq 124 ]; then
    echo "chaos campaign exceeded the ${CHAOS_BUDGET_SECS}s wall-clock budget" >&2
  else
    echo "chaos campaign found recovery violations (exit $status)" >&2
  fi
  exit "$status"
}

if [ -n "${STORM_BUDGET_SECS:-}" ]; then
  echo "== call storm (fleet-scale load harness, sharded rt speedup gate)" >&2
  # Opt-in: the storm rewrites BENCH_storm.json with wall-clock fields
  # (calls/sec, peak bytes), so it only runs when a budget is set —
  # normal CI runs stay byte-stable. The bin itself fails if any arm
  # leaves a call unestablished or the sharded rt pipeline is less than
  # 2x the single-inbox baseline measured in the same process.
  cargo build "$@" --release -q -p ipmedia-bench --bin call_storm
  timeout "$STORM_BUDGET_SECS" ./target/release/call_storm >/dev/null || {
    status=$?
    if [ "$status" -eq 124 ]; then
      echo "call storm exceeded the ${STORM_BUDGET_SECS}s wall-clock budget" >&2
    else
      echo "call storm failed an arm or the speedup gate (exit $status)" >&2
    fi
    exit "$status"
  }
else
  echo "== call storm skipped (set STORM_BUDGET_SECS to run)" >&2
fi

echo "all checks passed" >&2
