#!/usr/bin/env bash
# Workspace gate: formatting, lints, tests. Run before every push.
#
# Usage: scripts/check.sh [--offline]
#
# Any argument is forwarded to cargo (the CI container builds with
# --offline against the vendored shims).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check" >&2
cargo fmt --all -- --check

echo "== cargo clippy -D warnings" >&2
cargo clippy "$@" --workspace --all-targets -- -D warnings

echo "== cargo test" >&2
cargo test "$@" --workspace -q

echo "== ipmedia-lint (static analysis over all example models)" >&2
# All passes (AZ1xx–AZ6xx) at deny level, parallel with deterministic
# output, gated against the committed baseline; the SARIF log is a build
# artifact for CI code-scanning upload.
mkdir -p target
cargo run "$@" -q -p ipmedia-analyze --bin ipmedia-lint -- \
  --all-examples --deny warnings --threads "$(nproc)" \
  --baseline lint-baseline.txt --sarif target/ipmedia-lint.sarif

echo "== incremental lint (content-addressed cache, O(changed) re-lint)" >&2
# Cold-lints the committed fleet sample into a fresh cache, swaps in the
# one-program-edit variant of one scenario, and re-lints: the second run
# must miss exactly one scenario (everything else replays from cache) and
# both runs' diagnostic streams must be byte-identical apart from the
# edit — the cache-correctness oracle, exercised through the CLI.
cargo build "$@" --release -q -p ipmedia-analyze --bin ipmedia-lint
LINT_BUDGET_SECS="${LINT_BUDGET_SECS:-120}"
rm -rf target/lint_gate
mkdir -p target/lint_gate/cache
cp examples/fleet/*.ipm target/lint_gate/
run_gate_lint() {
  # Fuzz-generated fleet scenarios legitimately carry findings, so exit 1
  # (findings) is as green as exit 0 here; anything else is a failure.
  local status=0
  timeout "$LINT_BUDGET_SECS" ./target/release/ipmedia-lint \
    --incremental --cache target/lint_gate/cache --jsonl \
    target/lint_gate/fleet_*.ipm 2>/dev/null || status=$?
  if [ "$status" -ne 0 ] && [ "$status" -ne 1 ]; then
    echo "incremental lint gate failed (exit $status)" >&2
    exit "$status"
  fi
}
run_gate_lint > target/lint_gate/cold.jsonl
edited="$(ls examples/fleet/edited/)"
cp "examples/fleet/edited/$edited" target/lint_gate/
run_gate_lint > target/lint_gate/warm.jsonl
grep '"record":"lint_incremental"' target/lint_gate/warm.jsonl \
  | grep -q '"scenario_misses":1' || {
  echo "incremental gate: one-edit re-lint did not miss exactly one scenario:" >&2
  grep '"record":"lint_incremental"' target/lint_gate/warm.jsonl >&2 || true
  exit 1
}
# A fully-warm third pass over the same inputs must reproduce the warm
# diagnostics byte-for-byte with zero pass runs.
run_gate_lint > target/lint_gate/warm2.jsonl
grep '"record":"lint_incremental"' target/lint_gate/warm2.jsonl \
  | grep -q '"scenario_misses":0' || {
  echo "incremental gate: unchanged re-lint was not a full cache hit" >&2
  exit 1
}
diff <(grep '"type":"diag"' target/lint_gate/warm.jsonl) \
     <(grep '"type":"diag"' target/lint_gate/warm2.jsonl) || {
  echo "incremental gate: warm replay diverged from the analyzing run" >&2
  exit 1
}

echo "== verified manifest round trip (lint fingerprints -> live monitor)" >&2
# The registry lints clean, so its emitted manifest marks every scenario
# verified: the monitor must accept the whole registry under it, and must
# flag the same stream as IM401 under an empty manifest — proving the
# unverified-model path can actually fire.
cargo build "$@" --release -q -p ipmedia-bench --bin ipmedia-monitor
MONITOR_BUDGET_SECS="${MONITOR_BUDGET_SECS:-120}"
cargo run "$@" -q -p ipmedia-analyze --bin ipmedia-lint -- \
  --all-examples --incremental --cache target/lint_gate/registry-cache \
  --emit-manifest target/lint_gate/verified-manifest.txt
timeout "$MONITOR_BUDGET_SECS" ./target/release/ipmedia-monitor \
  --verified-manifest target/lint_gate/verified-manifest.txt >/dev/null || {
  echo "monitor rejected the freshly verified manifest (exit $?)" >&2
  exit 1
}
if timeout "$MONITOR_BUDGET_SECS" ./target/release/ipmedia-monitor \
  --verified-manifest /dev/null >/dev/null 2>/dev/null; then
  echo "monitor accepted an unverified model stream (IM401 did not fire)" >&2
  exit 1
fi

echo "== differential validation (analyzer clean => no mck counterexample)" >&2
# Cross-checks every analyzer-clean scenario's covered path classes
# against the model checker and refreshes BENCH_differential.jsonl; the
# matrix carries no wall-clock fields, so a dirty diff after this step
# means the coverage or verdicts actually changed.
cargo build "$@" --release -q -p ipmedia-bench --bin differential
DIFF_BUDGET_SECS="${DIFF_BUDGET_SECS:-240}"
timeout "$DIFF_BUDGET_SECS" ./target/release/differential --threads "$(nproc)" >/dev/null || {
  status=$?
  if [ "$status" -eq 124 ]; then
    echo "differential exceeded the ${DIFF_BUDGET_SECS}s wall-clock budget" >&2
  else
    echo "differential failed (exit $status)" >&2
  fi
  exit "$status"
}

echo "== property-based fuzz (generator -> analyzer <-> checker oracle)" >&2
# A fixed-seed slice of the differential fuzz campaign: seeded scenarios
# through the round-trip, soundness, and completeness oracles. Any
# divergence prints its delta-minimized .ipm reproducer on stderr (and
# the seed to replay with `ipmedia-lint --fuzz`); refreshes
# BENCH_fuzz.json, which carries no wall-clock fields.
cargo build "$@" --release -q -p ipmedia-bench --bin fuzz_differential
FUZZ_BUDGET_SECS="${FUZZ_BUDGET_SECS:-300}"
timeout "$FUZZ_BUDGET_SECS" ./target/release/fuzz_differential --threads "$(nproc)" >/dev/null || {
  status=$?
  if [ "$status" -eq 124 ]; then
    echo "fuzz_differential exceeded the ${FUZZ_BUDGET_SECS}s wall-clock budget" >&2
  else
    echo "fuzz_differential found analyzer<->checker divergences (exit $status)" >&2
  fi
  exit "$status"
}

echo "== fault-matrix smoke (loss x dup/reorder, bounded virtual time)" >&2
cargo run "$@" -q -p ipmedia-bench --bin fault_matrix -- --threads "$(nproc)" >/dev/null

echo "== verification campaign (parallel, wall-clock budget)" >&2
# The 12-model §VIII-A campaign at CI budgets, spread over all cores.
# `timeout` enforces the wall-clock budget: a throughput regression in the
# exploration engine fails the gate instead of silently slowing CI down.
cargo build "$@" --release -q -p ipmedia-mck --bin campaign
CAMPAIGN_BUDGET_SECS="${CAMPAIGN_BUDGET_SECS:-300}"
timeout "$CAMPAIGN_BUDGET_SECS" ./target/release/campaign 0 1 2000000 --threads "$(nproc)" >/dev/null || {
  status=$?
  if [ "$status" -eq 124 ]; then
    echo "campaign exceeded the ${CAMPAIGN_BUDGET_SECS}s wall-clock budget" >&2
  else
    echo "campaign failed (exit $status)" >&2
  fi
  exit "$status"
}

echo "== tracing overhead (zero perturbation + wall-clock budget)" >&2
# Asserts virtual-time latencies are identical traced vs. untraced (hard
# failure) and that the tracer's wall-clock cost stays within
# TRACE_OVERHEAD_BUDGET_PCT; rewrites BENCH_trace.json.
cargo run "$@" --release -q -p ipmedia-bench --bin trace_overhead >/dev/null

echo "== runtime invariant monitor (all scenarios clean + mutant self-test)" >&2
# Every registry scenario must run clean under the live monitor, and the
# planted closed-slot mutant must be flagged as IM102 — proving the gate
# can actually fail.
cargo build "$@" --release -q -p ipmedia-bench --bin ipmedia-monitor
MONITOR_BUDGET_SECS="${MONITOR_BUDGET_SECS:-120}"
timeout "$MONITOR_BUDGET_SECS" ./target/release/ipmedia-monitor >/dev/null || {
  status=$?
  if [ "$status" -eq 124 ]; then
    echo "monitor exceeded the ${MONITOR_BUDGET_SECS}s wall-clock budget" >&2
  else
    echo "monitor found invariant violations (exit $status)" >&2
  fi
  exit "$status"
}
timeout "$MONITOR_BUDGET_SECS" ./target/release/ipmedia-monitor --mutant closed-slot \
  >/dev/null 2>/dev/null || {
  status=$?
  if [ "$status" -eq 124 ]; then
    echo "monitor mutant self-test exceeded the ${MONITOR_BUDGET_SECS}s budget" >&2
  else
    echo "monitor failed to catch the planted closed-slot mutant (exit $status)" >&2
  fi
  exit "$status"
}

echo "== chaos campaign (seeded schedules, monitor-verified recovery)" >&2
# Seeded fault schedules across every registry scenario and schedule
# family on the simulator plus a compressed sweep on the live runtime;
# any post-heal invariant violation fails the gate and the bin prints
# the failing seed with its delta-debugged minimal schedule on stderr.
# Rewrites BENCH_chaos.json.
cargo build "$@" --release -q -p ipmedia-bench --bin chaos_campaign
CHAOS_BUDGET_SECS="${CHAOS_BUDGET_SECS:-240}"
timeout "$CHAOS_BUDGET_SECS" ./target/release/chaos_campaign --threads "$(nproc)" >/dev/null || {
  status=$?
  if [ "$status" -eq 124 ]; then
    echo "chaos campaign exceeded the ${CHAOS_BUDGET_SECS}s wall-clock budget" >&2
  else
    echo "chaos campaign found recovery violations (exit $status)" >&2
  fi
  exit "$status"
}

if [ -n "${STORM_BUDGET_SECS:-}" ]; then
  echo "== call storm (fleet-scale load harness, sharded rt speedup gate)" >&2
  # Opt-in: the storm rewrites BENCH_storm.json with wall-clock fields
  # (calls/sec, peak bytes), so it only runs when a budget is set —
  # normal CI runs stay byte-stable. The bin itself fails if any arm
  # leaves a call unestablished or the sharded rt pipeline is less than
  # 2x the single-inbox baseline measured in the same process.
  cargo build "$@" --release -q -p ipmedia-bench --bin call_storm
  timeout "$STORM_BUDGET_SECS" ./target/release/call_storm >/dev/null || {
    status=$?
    if [ "$status" -eq 124 ]; then
      echo "call storm exceeded the ${STORM_BUDGET_SECS}s wall-clock budget" >&2
    else
      echo "call storm failed an arm or the speedup gate (exit $status)" >&2
    fi
    exit "$status"
  }
else
  echo "== call storm skipped (set STORM_BUDGET_SECS to run)" >&2
fi

if [ -n "${LINT_FLEET_BUDGET_SECS:-}" ]; then
  echo "== lint fleet (10k-scenario incremental re-lint benchmark)" >&2
  # Opt-in: rewrites BENCH_lint.json with wall-clock fields, so it only
  # runs when a budget is set — normal CI runs stay byte-stable. The bin
  # itself fails on any warm cache miss, a non-O(changed) one-edit
  # profile, a dirty re-lint speedup below 100x, or output divergence
  # across 1/2/8 worker threads.
  cargo build "$@" --release -q -p ipmedia-bench --bin ipmedia-lint-fleet
  timeout "$LINT_FLEET_BUDGET_SECS" ./target/release/ipmedia-lint-fleet >/dev/null || {
    status=$?
    if [ "$status" -eq 124 ]; then
      echo "lint fleet exceeded the ${LINT_FLEET_BUDGET_SECS}s wall-clock budget" >&2
    else
      echo "lint fleet failed an incremental-cache assertion (exit $status)" >&2
    fi
    exit "$status"
  }
else
  echo "== lint fleet skipped (set LINT_FLEET_BUDGET_SECS to run)" >&2
fi

echo "all checks passed" >&2
