#!/usr/bin/env bash
# Workspace gate: formatting, lints, tests. Run before every push.
#
# Usage: scripts/check.sh [--offline]
#
# Any argument is forwarded to cargo (the CI container builds with
# --offline against the vendored shims).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check" >&2
cargo fmt --all -- --check

echo "== cargo clippy -D warnings" >&2
cargo clippy "$@" --workspace --all-targets -- -D warnings

echo "== cargo test" >&2
cargo test "$@" --workspace -q

echo "== ipmedia-lint (static analysis over all example models)" >&2
cargo run "$@" -q -p ipmedia-analyze --bin ipmedia-lint -- --all-examples --deny warnings

echo "== fault-matrix smoke (loss x dup/reorder, bounded virtual time)" >&2
cargo run "$@" -q -p ipmedia-bench --bin fault_matrix >/dev/null

echo "all checks passed" >&2
