#!/usr/bin/env bash
# Workspace gate: formatting, lints, tests. Run before every push.
#
# Usage: scripts/check.sh [--offline]
#
# Any argument is forwarded to cargo (the CI container builds with
# --offline against the vendored shims).

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check" >&2
cargo fmt --all -- --check

echo "== cargo clippy -D warnings" >&2
cargo clippy "$@" --workspace --all-targets -- -D warnings

echo "== cargo test" >&2
cargo test "$@" --workspace -q

echo "== ipmedia-lint (static analysis over all example models)" >&2
cargo run "$@" -q -p ipmedia-analyze --bin ipmedia-lint -- --all-examples --deny warnings

echo "== fault-matrix smoke (loss x dup/reorder, bounded virtual time)" >&2
cargo run "$@" -q -p ipmedia-bench --bin fault_matrix -- --threads "$(nproc)" >/dev/null

echo "== verification campaign (parallel, wall-clock budget)" >&2
# The 12-model §VIII-A campaign at CI budgets, spread over all cores.
# `timeout` enforces the wall-clock budget: a throughput regression in the
# exploration engine fails the gate instead of silently slowing CI down.
cargo build "$@" --release -q -p ipmedia-mck --bin campaign
CAMPAIGN_BUDGET_SECS="${CAMPAIGN_BUDGET_SECS:-300}"
timeout "$CAMPAIGN_BUDGET_SECS" ./target/release/campaign 0 1 2000000 --threads "$(nproc)" >/dev/null || {
  status=$?
  if [ "$status" -eq 124 ]; then
    echo "campaign exceeded the ${CAMPAIGN_BUDGET_SECS}s wall-clock budget" >&2
  else
    echo "campaign failed (exit $status)" >&2
  fi
  exit "$status"
}

echo "all checks passed" >&2
