pub use ipmedia_apps as apps;
pub use ipmedia_core as core;
pub use ipmedia_mck as mck;
pub use ipmedia_media as media;
pub use ipmedia_netsim as netsim;
pub use ipmedia_obs as obs;
pub use ipmedia_rt as rt;
pub use ipmedia_sip as sip;
