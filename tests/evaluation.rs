//! Cross-crate evaluation tests: the paper's headline numbers, asserted.
//!
//! These pin the *shape* results of the paper's evaluation — who wins, by
//! what factor, where the formulas land — across the simulator, the model
//! checker, and the SIP baseline together.

use ipmedia::core::path::PathType;
use ipmedia::mck::{budgeted, check_path, paper_campaign_par};
use ipmedia::netsim::{SimConfig, SimDuration};
use ipmedia_bench::{fig13_concurrent_relink, fresh_setup_latency, relink_latency};

#[test]
fn fig13_latency_matches_paper_exactly() {
    // §VIII-C: "With these numbers the latency of Figure 13 is 128 ms."
    assert_eq!(
        fig13_concurrent_relink(SimConfig::paper()),
        SimDuration::from_millis(128)
    );
}

#[test]
fn general_latency_formula_holds_for_all_path_lengths() {
    // §VIII-C: pn + (p+1)c.
    for p in 1..=8usize {
        let measured = relink_latency(p, SimConfig::paper());
        let formula = SimDuration::from_millis(34 * p as u64 + 20 * (p as u64 + 1));
        assert_eq!(measured, formula, "p = {p}");
    }
}

#[test]
fn latency_scales_linearly_with_n_and_c() {
    // Re-run Fig. 13 with doubled parameters: the formula structure, not
    // the constants, is what the simulator reproduces.
    let cfg = SimConfig {
        net_latency: SimDuration::from_millis(68),
        compute_cost: SimDuration::from_millis(40),
    };
    assert_eq!(
        fig13_concurrent_relink(cfg),
        SimDuration::from_millis(2 * 68 + 3 * 40)
    );
}

#[test]
fn sip_common_case_is_three_times_slower() {
    // §IX-B: "in the common situation, the comparison is 378 ms versus
    // 128 ms."
    let ours = fig13_concurrent_relink(SimConfig::paper()).as_millis_f64();
    let sip = ipmedia::sip::common_case(1)
        .expect("converges")
        .converged_after
        .as_millis_f64();
    assert_eq!(ours, 128.0);
    assert_eq!(sip, 378.0, "the SIP message walk reproduces 7n + 7c");
}

#[test]
fn sip_glare_is_dominated_by_the_retry_delay() {
    // §IX-B: 10n + 11c + d with E[d] = 3 s ≈ 3560 ms. Individual runs
    // vary with d ∈ [2.1 s, 4 s].
    let mut sum = 0.0;
    for seed in 0..10 {
        let g = ipmedia::sip::glare_scenario(seed).expect("converges");
        let ms = g.converged_after.as_millis_f64();
        assert!((2_300.0..4_700.0).contains(&ms), "seed {seed}: {ms}");
        sum += ms;
    }
    let avg = sum / 10.0;
    let ours = 128.0;
    assert!(
        avg / ours > 20.0,
        "glare must be over an order of magnitude worse: {avg} vs {ours}"
    );
}

#[test]
fn caching_pays_for_itself() {
    // Unilateral descriptors can be cached and re-used (§IX-B): re-linking
    // an established path is strictly cheaper than a fresh setup.
    for k in 1..=4 {
        let fresh = fresh_setup_latency(k, SimConfig::paper());
        let cached = relink_latency(k, SimConfig::paper());
        assert!(cached < fresh, "k={k}: cached {cached} >= fresh {fresh}");
    }
}

#[test]
fn verification_campaign_all_pass_quick() {
    // The 12-model campaign of §VIII-A at CI-sized budgets, run through
    // the campaign worker pool (0 = one worker per core); results come
    // back in config order and are identical at any thread count.
    let results = paper_campaign_par(0, 2_000_000, 0);
    assert_eq!(results.len(), 12);
    for res in results {
        assert!(
            res.passed(),
            "{} with {} flowlinks: safety={:?} spec={:?}",
            res.path_type,
            res.links,
            res.safety,
            res.spec_result
        );
    }
}

#[test]
fn flowlink_inflates_the_state_space() {
    // §VIII-A's qualitative claim: adding a flowlink costs orders of
    // magnitude. At our budgets the factor is tens, consistently.
    let (l, r) = PathType::OpenHold.ends();
    let (res0, _) = check_path(&budgeted(0, l, r, 0), 2_000_000);
    let (res1, _) = check_path(&budgeted(1, l, r, 0), 2_000_000);
    assert!(
        res1.states > 10 * res0.states,
        "{} vs {}",
        res1.states,
        res0.states
    );
}
