//! Property-based tests over the protocol core: randomized schedules,
//! policies, and record contents must never break the §V guarantees.
//!
//! Two tiers share one set of checker bodies. The default tier keeps CI
//! wall time low (small case counts, short schedules); the `#[ignore]`d
//! exhaustive tier re-runs the same properties at ~10× the cases with
//! much longer delivery schedules — run it with `cargo test -- --ignored`.

use ipmedia::core::goal::{
    AcceptMode, CloseSlot, EndpointPolicy, FlowLink, HoldSlot, LinkSide, OpenSlot, Policy,
    UserAgent, UserCmd,
};
use ipmedia::core::path::PathEnds;
use ipmedia::core::{Codec, MediaAddr, Medium, Signal, Slot, SlotState};
use proptest::prelude::*;
use std::collections::VecDeque;

fn arb_codecs() -> impl Strategy<Value = Vec<Codec>> {
    proptest::sample::subsequence(vec![Codec::G711, Codec::G726, Codec::G729], 1..=3)
}

fn arb_policy(host: u8) -> impl Strategy<Value = EndpointPolicy> {
    (arb_codecs(), arb_codecs(), any::<bool>(), any::<bool>()).prop_map(
        move |(recv, send, mute_in, mute_out)| EndpointPolicy {
            addr: MediaAddr::v4(10, 0, 0, host, 4000),
            recv_codecs: recv,
            send_codecs: send,
            mute_in,
            mute_out,
        },
    )
}

/// A two-endpoint world with a flowlink box in the middle and FIFO queues,
/// stepped under an arbitrary delivery schedule.
struct World {
    l_agent: UserAgent,
    l_slot: Slot,
    fl: FlowLink,
    fa: Slot,
    fb: Slot,
    r_agent: UserAgent,
    r_slot: Slot,
    // queues[0]: L→FL.a, [1]: FL.a→L, [2]: FL.b→R, [3]: R→FL.b
    queues: [VecDeque<Signal>; 4],
}

impl World {
    fn new(lp: EndpointPolicy, rp: EndpointPolicy) -> World {
        World {
            l_agent: UserAgent::new(lp, AcceptMode::Auto, 1),
            l_slot: Slot::new(true),
            fl: FlowLink::new(50),
            fa: Slot::new(false),
            fb: Slot::new(true),
            r_agent: UserAgent::new(rp, AcceptMode::Auto, 2),
            r_slot: Slot::new(false),
            queues: Default::default(),
        }
    }

    fn pending(&self) -> Vec<usize> {
        (0..4).filter(|&i| !self.queues[i].is_empty()).collect()
    }

    /// Deliver the head of queue `q`.
    fn deliver(&mut self, q: usize) {
        let Some(sig) = self.queues[q].pop_front() else {
            return;
        };
        match q {
            0 => {
                let (ev, auto) = self.fa.on_signal(sig);
                for s in auto {
                    self.queues[1].push_back(s);
                }
                for (side, s) in self
                    .fl
                    .on_event(LinkSide::A, &ev, &mut self.fa, &mut self.fb)
                {
                    let qi = if side == LinkSide::A { 1 } else { 2 };
                    self.queues[qi].push_back(s);
                }
            }
            1 => {
                let (ev, auto) = self.l_slot.on_signal(sig);
                for s in auto {
                    self.queues[0].push_back(s);
                }
                let (sigs, _) = self.l_agent.on_event(&ev, &mut self.l_slot);
                for s in sigs {
                    self.queues[0].push_back(s);
                }
            }
            2 => {
                let (ev, auto) = self.r_slot.on_signal(sig);
                for s in auto {
                    self.queues[3].push_back(s);
                }
                let (sigs, _) = self.r_agent.on_event(&ev, &mut self.r_slot);
                for s in sigs {
                    self.queues[3].push_back(s);
                }
            }
            3 => {
                let (ev, auto) = self.fb.on_signal(sig);
                for s in auto {
                    self.queues[2].push_back(s);
                }
                for (side, s) in self
                    .fl
                    .on_event(LinkSide::B, &ev, &mut self.fa, &mut self.fb)
                {
                    let qi = if side == LinkSide::A { 1 } else { 2 };
                    self.queues[qi].push_back(s);
                }
            }
            _ => unreachable!(),
        }
    }

    /// Drain all queues under a schedule driven by `picks` (each pick
    /// selects among the currently non-empty queues), then drain
    /// round-robin. Returns delivered-signal count.
    fn drain(&mut self, picks: &[u8]) -> usize {
        let mut delivered = 0;
        for &p in picks {
            let pending = self.pending();
            if pending.is_empty() {
                break;
            }
            self.deliver(pending[p as usize % pending.len()]);
            delivered += 1;
        }
        for _ in 0..10_000 {
            let pending = self.pending();
            if pending.is_empty() {
                return delivered;
            }
            self.deliver(pending[0]);
            delivered += 1;
        }
        panic!("world did not quiesce: runaway signaling loop");
    }
}

/// Under any delivery schedule and any endpoint capabilities with a shared
/// codec, an open–accept path through a flowlink converges to bothFlowing
/// with consistent mute semantics (§V).
fn check_flowlinked_convergence(lp: EndpointPolicy, rp: EndpointPolicy, picks: &[u8]) {
    let mut w = World::new(lp.clone(), rp.clone());
    let opens = w
        .l_agent
        .command(UserCmd::Open(Medium::Audio), &mut w.l_slot)
        .unwrap();
    for s in opens {
        w.queues[0].push_back(s);
    }
    w.drain(picks);

    let ends = PathEnds::new(&w.l_slot, &w.r_slot);
    prop_assert!(
        ends.both_flowing(),
        "path must converge: L={:?} R={:?}",
        w.l_slot.state(),
        w.r_slot.state()
    );
    // Mute semantics: each direction enabled iff sender unmuted-out,
    // receiver unmuted-in, and a shared codec exists.
    let shared_lr = lp.send_codecs.iter().any(|c| rp.recv_codecs.contains(c));
    let shared_rl = rp.send_codecs.iter().any(|c| lp.recv_codecs.contains(c));
    prop_assert_eq!(ends.ltr_enabled(), !lp.mute_out && !rp.mute_in && shared_lr);
    prop_assert_eq!(ends.rtl_enabled(), !rp.mute_out && !lp.mute_in && shared_rl);
}

/// A closeslot on one end always drives the pair to bothClosed, no matter
/// the schedule, even against a holdslot that accepted.
fn check_close_hold_convergence(picks: &[u8]) {
    // Direct tunnel, no flowlink: L holds, R closes, after L's open.
    let mut l = Slot::new(true);
    let mut r = Slot::new(false);
    let mut hold = HoldSlot::with_policy(
        Policy::Endpoint(EndpointPolicy::audio(MediaAddr::v4(10, 0, 0, 1, 4000))),
        1,
    );
    let mut close = CloseSlot::new();
    let mut open_goal = OpenSlot::with_policy(
        Medium::Audio,
        Policy::Endpoint(EndpointPolicy::audio(MediaAddr::v4(10, 0, 0, 1, 4000))),
        2,
    );
    // L first tries to open (as a previous goal), then a closeslot takes
    // over at a schedule-dependent moment.
    let mut q_lr: VecDeque<Signal> = open_goal.attach(&mut l).into();
    let mut q_rl: VecDeque<Signal> = VecDeque::new();
    let mut switched = false;
    for &p in picks {
        if !switched && p % 5 == 0 {
            for s in close.attach(&mut l) {
                q_lr.push_back(s);
            }
            switched = true;
            continue;
        }
        if p % 2 == 0 {
            if let Some(s) = q_lr.pop_front() {
                let (ev, auto) = r.on_signal(s);
                for a in auto {
                    q_rl.push_back(a);
                }
                for a in hold.on_event(&ev, &mut r) {
                    q_rl.push_back(a);
                }
            }
        } else if let Some(s) = q_rl.pop_front() {
            let (ev, auto) = l.on_signal(s);
            for a in auto {
                q_lr.push_back(a);
            }
            let out = if switched {
                close.on_event(&ev, &mut l)
            } else {
                open_goal.on_event(&ev, &mut l)
            };
            for a in out {
                q_lr.push_back(a);
            }
        }
    }
    if !switched {
        for s in close.attach(&mut l) {
            q_lr.push_back(s);
        }
    }
    // Drain to quiescence.
    for _ in 0..1000 {
        if q_lr.is_empty() && q_rl.is_empty() {
            break;
        }
        if let Some(s) = q_lr.pop_front() {
            let (ev, auto) = r.on_signal(s);
            for a in auto {
                q_rl.push_back(a);
            }
            for a in hold.on_event(&ev, &mut r) {
                q_rl.push_back(a);
            }
        }
        if let Some(s) = q_rl.pop_front() {
            let (ev, auto) = l.on_signal(s);
            for a in auto {
                q_lr.push_back(a);
            }
            for a in close.on_event(&ev, &mut l) {
                q_lr.push_back(a);
            }
        }
    }
    prop_assert_eq!(l.state(), SlotState::Closed);
    prop_assert_eq!(r.state(), SlotState::Closed);
}

/// The wire codec is lossless for arbitrary signals (cross-checks the rt
/// crate against core from outside both).
fn check_wire_roundtrip(
    origin: u64,
    generation: u32,
    port: u16,
    host: u8,
    codecs: Vec<Codec>,
    tunnel: u16,
) {
    use ipmedia::core::{ChannelMsg, DescTag, Descriptor, TunnelId};
    use ipmedia::rt::{decode, encode, Frame};
    let desc = Descriptor::media(
        DescTag { origin, generation },
        MediaAddr::v4(10, 0, 0, host, port),
        codecs,
    );
    let frame = Frame::Msg(ChannelMsg::Tunnel {
        tunnel: TunnelId(tunnel),
        signal: Signal::Open {
            medium: Medium::Audio,
            desc,
        },
    });
    let back = decode(encode(&frame)).unwrap();
    prop_assert_eq!(frame, back);
}

// ---------------------------------------------------------------------
// Default tier: CI-sized. Small case counts and short schedules keep the
// whole file cheap while still crossing every queue-interleaving class.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn flowlinked_path_converges_under_any_schedule(
        lp in arb_policy(1),
        rp in arb_policy(2),
        picks in proptest::collection::vec(any::<u8>(), 0..48),
    ) {
        check_flowlinked_convergence(lp, rp, &picks);
    }

    #[test]
    fn close_hold_converges_to_both_closed(
        picks in proptest::collection::vec(any::<u8>(), 0..32),
    ) {
        check_close_hold_convergence(&picks);
    }

    #[test]
    fn wire_roundtrip_arbitrary_descriptors(
        origin in any::<u64>(),
        generation in any::<u32>(),
        port in any::<u16>(),
        host in any::<u8>(),
        codecs in arb_codecs(),
        tunnel in any::<u16>(),
    ) {
        check_wire_roundtrip(origin, generation, port, host, codecs, tunnel);
    }

    /// Truncating or corrupting the version byte never panics the decoder.
    #[test]
    fn wire_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        use ipmedia::rt::decode;
        let _ = decode(bytes::Bytes::from(bytes)); // must not panic
    }
}

// ---------------------------------------------------------------------
// Exhaustive tier: `cargo test -- --ignored`. Same properties, ~20× the
// cases and schedules long enough to wander far off the convergence
// fast-path before the round-robin drain takes over.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    #[ignore = "exhaustive tier; run with -- --ignored"]
    fn exhaustive_flowlinked_path_converges_under_any_schedule(
        lp in arb_policy(1),
        rp in arb_policy(2),
        picks in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        check_flowlinked_convergence(lp, rp, &picks);
    }

    #[test]
    #[ignore = "exhaustive tier; run with -- --ignored"]
    fn exhaustive_close_hold_converges_to_both_closed(
        picks in proptest::collection::vec(any::<u8>(), 0..192),
    ) {
        check_close_hold_convergence(&picks);
    }

    #[test]
    #[ignore = "exhaustive tier; run with -- --ignored"]
    fn exhaustive_wire_roundtrip_arbitrary_descriptors(
        origin in any::<u64>(),
        generation in any::<u32>(),
        port in any::<u16>(),
        host in any::<u8>(),
        codecs in arb_codecs(),
        tunnel in any::<u16>(),
    ) {
        check_wire_roundtrip(origin, generation, port, host, codecs, tunnel);
    }

    #[test]
    #[ignore = "exhaustive tier; run with -- --ignored"]
    fn exhaustive_wire_decoder_is_total(
        bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        use ipmedia::rt::decode;
        let _ = decode(bytes::Bytes::from(bytes)); // must not panic
    }
}
