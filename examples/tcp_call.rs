//! A live call over real TCP sockets: three boxes as tokio tasks —
//! caller, gateway server (flowlink), callee — speaking the binary wire
//! protocol over loopback TCP. The same state machines the simulator and
//! the model checker execute, now on an actual network stack.
//!
//! Run with: `cargo run --example tcp_call`

use ipmedia::core::boxes::GoalSpec;
use ipmedia::core::endpoint::EndpointLogic;
use ipmedia::core::goal::{AcceptMode, EndpointPolicy, UserCmd};
use ipmedia::core::ids::SlotId;
use ipmedia::core::program::{AppLogic, BoxInput, Ctx};
use ipmedia::core::{BoxId, MediaAddr, Medium, SlotState};
use ipmedia::rt::{spawn_node, Directory};
use tokio::time::Duration;

/// Dials the gateway at start and opens an audio channel.
struct Dialer;

impl AppLogic for Dialer {
    fn handle(&mut self, input: &BoxInput, ctx: &mut Ctx<'_>) {
        match input {
            BoxInput::Start => ctx.open_channel("gateway", 1, 1),
            BoxInput::ChannelUp {
                slots,
                req: Some(1),
                ..
            } => {
                ctx.set_goal(GoalSpec::User {
                    slot: slots[0],
                    policy: EndpointPolicy::audio(MediaAddr::v4(127, 0, 0, 1, 40010)),
                    mode: AcceptMode::Auto,
                });
                ctx.user(slots[0], UserCmd::Open(Medium::Audio));
            }
            _ => {}
        }
    }
}

/// Dials the callee on behalf of incoming callers and flowlinks the legs.
struct Gateway {
    caller: Option<SlotId>,
}

impl AppLogic for Gateway {
    fn handle(&mut self, input: &BoxInput, ctx: &mut Ctx<'_>) {
        match input {
            BoxInput::ChannelUp {
                slots, req: None, ..
            } => {
                self.caller = Some(slots[0]);
                ctx.open_channel("callee", 1, 9);
            }
            BoxInput::ChannelUp {
                slots,
                req: Some(9),
                ..
            } => {
                ctx.set_goal(GoalSpec::Link {
                    a: self.caller.expect("caller connected first"),
                    b: slots[0],
                });
            }
            _ => {}
        }
    }
}

#[tokio::main]
async fn main() -> std::io::Result<()> {
    let dir = Directory::new();

    let mut callee = spawn_node(
        "callee",
        BoxId(3),
        Box::new(EndpointLogic::resource(EndpointPolicy::audio(
            MediaAddr::v4(127, 0, 0, 1, 40020),
        ))),
        dir.clone(),
    )
    .await?;
    println!("callee listening on {}", callee.addr);

    let gateway = spawn_node(
        "gateway",
        BoxId(2),
        Box::new(Gateway { caller: None }),
        dir.clone(),
    )
    .await?;
    println!("gateway listening on {}", gateway.addr);

    let mut caller = spawn_node("caller", BoxId(1), Box::new(Dialer), dir.clone()).await?;
    println!("caller  listening on {}", caller.addr);

    let ok = caller
        .wait_for(Duration::from_secs(10), |snap| {
            snap.slots
                .iter()
                .any(|s| s.state == SlotState::Flowing && s.tx_route.is_some())
        })
        .await;
    assert!(ok, "caller must reach flowing");
    let snap = caller.snapshot.borrow().clone();
    let route = snap.slots[0].tx_route.unwrap();
    println!(
        "\ncall established over real TCP: caller sends {} to {}",
        route.1, route.0
    );

    let ok = callee
        .wait_for(Duration::from_secs(10), |snap| {
            snap.slots.iter().any(|s| s.tx_route.is_some())
        })
        .await;
    assert!(ok);
    let snap = callee.snapshot.borrow().clone();
    let route = snap.slots[0].tx_route.unwrap();
    println!("callee sends {} to {}", route.1, route.0);
    println!("media addresses were negotiated end-to-end through the gateway's flowlink.");

    // Hang up and shut everything down gracefully.
    let slot = caller.snapshot.borrow().slots[0].slot;
    caller.user(slot, UserCmd::Close).await;
    caller
        .wait_for(Duration::from_secs(5), |snap| {
            snap.slots.iter().all(|s| s.state == SlotState::Closed)
        })
        .await;
    println!("hung up; shutting down.");
    caller.shutdown().await;
    gateway.shutdown().await;
    callee.shutdown().await;
    Ok(())
}
