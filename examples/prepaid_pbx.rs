//! The paper's running example (Figs. 2–3): a PBX with call switching and
//! a prepaid-card server acting on the same media channels, concurrently
//! and without knowledge of each other — kept globally correct by the
//! compositional primitives and *proximity confers priority*.
//!
//! Run with: `cargo run --example prepaid_pbx`

use ipmedia::apps::{MediaNet, PbxLogic, PrepaidLogic};
use ipmedia::core::endpoint::EndpointLogic;
use ipmedia::core::goal::{AcceptMode, EndpointPolicy, UserCmd};
use ipmedia::core::ids::{ChannelId, SlotId};
use ipmedia::core::signal::{AppEvent, MetaSignal};
use ipmedia::core::{BoxInput, MediaAddr, Medium};
use ipmedia::media::SourceKind;
use ipmedia::netsim::{Network, SimConfig, SimTime};

const T: SimTime = SimTime(600_000_000);

fn addr(h: u8) -> MediaAddr {
    MediaAddr::v4(10, 0, 0, h, 4000)
}

fn show_flows(mn: &ipmedia::apps::MediaNet, label: &str) {
    println!("\n=== {label} ===");
    let names = [
        (addr(1), "A"),
        (addr(2), "B"),
        (addr(3), "C"),
        (addr(4), "V"),
    ];
    let mut any = false;
    for (from, fname) in names {
        for (to, tname) in names {
            let n = mn.plane.flows().count(from, to);
            if n > 0 {
                println!("  {fname} → {tname}: {n} packets");
                any = true;
            }
        }
    }
    if !any {
        println!("  (no media flow)");
    }
}

fn meta(cmd: &str) -> BoxInput {
    BoxInput::Meta {
        channel: ChannelId(u32::MAX),
        meta: MetaSignal::App(AppEvent::Custom(cmd.into())),
    }
}

fn main() {
    let mut net = Network::new(SimConfig::paper());
    let phone = |h: u8| {
        Box::new(EndpointLogic::new(
            EndpointPolicy::audio(addr(h)),
            AcceptMode::Auto,
        ))
    };
    let a = net.add_box("phone-a", phone(1));
    let b = net.add_box("phone-b", phone(2));
    let c = net.add_box("phone-c", phone(3));
    let v = net.add_box("ivr", phone(4));
    let pbx = net.add_box("pbx", Box::new(PbxLogic::new("phone-a")));
    let pc = net.add_box(
        "pc-server",
        Box::new(PrepaidLogic::new("pbx", "ivr", 3_600_000)),
    );
    net.run_until_quiescent(T);
    let _ = v;

    let mut mn = MediaNet::new(net);
    mn.endpoint(a, addr(1), SourceKind::SpeechLike(1));
    mn.endpoint(b, addr(2), SourceKind::SpeechLike(2));
    mn.endpoint(c, addr(3), SourceKind::SpeechLike(3));
    mn.endpoint(
        mn.net.box_id("ivr").unwrap(),
        addr(4),
        SourceKind::SpeechLike(4),
    );

    // A calls B through the PBX.
    mn.net.user(a, SlotId(0), UserCmd::Open(Medium::Audio));
    mn.net.run_until_quiescent(T);
    mn.net.inject_input(pbx, meta("call:phone-b"));
    mn.settle_and_pump(T, 10);
    show_flows(&mn, "A talking to B");

    // C dials in with a prepaid card; PC places the leg toward the PBX.
    let (_, c_slots, _) = mn.net.connect(c, pc, 1);
    mn.net.run_until_quiescent(T);
    mn.net.user(c, c_slots[0], UserCmd::Open(Medium::Audio));
    mn.settle_and_pump(T, 10);
    show_flows(&mn, "prepaid call waiting (held at the PBX)");

    // Snapshot 1: A switches to the incoming call.
    mn.net.inject_input(pbx, meta("switch:1"));
    mn.settle_and_pump(T, 10);
    show_flows(&mn, "Snapshot 1: A ↔ C");

    // Snapshot 2: prepaid funds run out; PC re-links C to the IVR.
    mn.net.inject_input(pc, meta("expire"));
    mn.settle_and_pump(T, 10);
    show_flows(&mn, "Snapshot 2: C ↔ V (refill dialogue), A silent");

    // Snapshot 3: A switches back to B. In Fig. 2 this erroneously cut
    // C's audio to V; compositionally it must not.
    mn.net.inject_input(pbx, meta("switch:0"));
    mn.settle_and_pump(T, 10);
    show_flows(&mn, "Snapshot 3: A ↔ B and C ↔ V");

    // Snapshot 4: funds verified; PC reconnects C toward A — but the PBX
    // holds that leg until A switches. In Fig. 2, A was stolen from B.
    mn.net.inject_input(
        pc,
        BoxInput::Meta {
            channel: ChannelId(u32::MAX),
            meta: MetaSignal::App(AppEvent::FundsVerified),
        },
    );
    mn.settle_and_pump(T, 10);
    show_flows(&mn, "Snapshot 4: A still with B; C waits for A");

    mn.net.inject_input(pbx, meta("switch:1"));
    mn.settle_and_pump(T, 10);
    show_flows(&mn, "A switches again: A ↔ C restored");

    println!("\nEvery transition kept the media globally correct — the Fig. 2");
    println!("failures (V losing C's audio, A stolen from B, B transmitting");
    println!("into the void) cannot happen.");
}
