//! The protocol comparison of paper §IX-B: the compositional protocol's
//! concurrent re-link (Fig. 13) vs. a SIP-like transactional baseline
//! (Fig. 14), measured on identical timing (n = 34 ms, c = 20 ms).
//!
//! Run with: `cargo run --example sip_comparison`

use ipmedia::sip::{common_case, glare_scenario};

fn main() {
    println!("timing model: n = 34 ms network latency, c = 20 ms compute\n");

    println!("compositional protocol (paper, Fig. 13):");
    println!("  concurrent re-link by two servers: 2n + 3c = 128 ms");
    println!("  (measured in this repo by `cargo bench -p ipmedia-bench` /");
    println!("   the `experiments` binary — see EXPERIMENTS.md table L1)\n");

    let common = common_case(42).expect("SIP common case converges");
    println!("SIP baseline, common case (no contention):");
    println!("  formula 7n + 7c = 378 ms");
    println!(
        "  measured: {:.0} ms over {} messages (glares: {})",
        common.converged_after.as_millis_f64(),
        common.messages,
        common.glares
    );
    println!("  extra costs vs. the compositional protocol (§IX-B):");
    println!("    - soliciting a fresh offer (answers are relative, offers");
    println!("      not re-usable): +2n + 2c");
    println!("    - describing the two ends sequentially rather than in");
    println!("      parallel: +3n + 2c\n");

    println!("SIP baseline, glare (both servers re-link concurrently, Fig. 14):");
    println!("  formula 10n + 11c + d, E[d] ≈ 3 s → ≈ 3560 ms");
    let mut sum = 0.0;
    let runs = 10;
    for seed in 0..runs {
        let g = glare_scenario(seed).expect("glare scenario converges");
        println!(
            "  seed {seed}: {:.0} ms ({} messages, {} glare rejections, {} attempts)",
            g.converged_after.as_millis_f64(),
            g.messages,
            g.glares,
            g.attempts_total
        );
        sum += g.converged_after.as_millis_f64();
    }
    println!("  average: {:.0} ms", sum / runs as f64);
    println!("\nconclusion (paper §IX-B): idempotent signaling and unilateral");
    println!("description beat transactions and negotiation for real-time");
    println!("communication control — here by a factor of ~3 in the common");
    println!("case and ~28 under contention.");
}
