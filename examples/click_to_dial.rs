//! Click-to-Dial (paper Fig. 6): a web click places a call to the user's
//! own phone, then to the clicked party, with ringback played from a tone
//! generator in between.
//!
//! Run with: `cargo run --example click_to_dial`

use ipmedia::apps::{ClickToDialLogic, MediaNet};
use ipmedia::core::endpoint::EndpointLogic;
use ipmedia::core::goal::{AcceptMode, EndpointPolicy, UserCmd};
use ipmedia::core::ids::SlotId;
use ipmedia::core::{MediaAddr, SlotState};
use ipmedia::media::{SourceKind, ToneKind};
use ipmedia::netsim::{Network, SimConfig, SimTime};

const T: SimTime = SimTime(600_000_000);

fn addr(h: u8) -> MediaAddr {
    MediaAddr::v4(10, 0, 0, h, 4000)
}

fn main() {
    let mut net = Network::new(SimConfig::paper());
    let u1 = net.add_box(
        "user1-phone",
        Box::new(EndpointLogic::new(
            EndpointPolicy::audio(addr(1)),
            AcceptMode::Manual, // rings until answered
        )),
    );
    let u2 = net.add_box(
        "user2-phone",
        Box::new(EndpointLogic::new(
            EndpointPolicy::audio(addr(2)),
            AcceptMode::Manual,
        )),
    );
    let tone = net.add_box(
        "tonegen",
        Box::new(EndpointLogic::new(
            EndpointPolicy::audio(addr(9)),
            AcceptMode::Auto,
        )),
    );
    // The click happens at start: the CTD box dials user 1 first.
    net.add_box(
        "ctd",
        Box::new(ClickToDialLogic::new(
            "user1-phone",
            "user2-phone",
            "tonegen",
            60_000,
        )),
    );

    let mut mn = MediaNet::new(net);
    mn.endpoint(u1, addr(1), SourceKind::SpeechLike(1));
    mn.endpoint(u2, addr(2), SourceKind::SpeechLike(2));
    mn.endpoint(tone, addr(9), SourceKind::Tone(ToneKind::Ringback));

    // User 1's phone rings.
    let ringing = mn.net.run_until(T, |n| {
        n.media(u1)
            .slot(SlotId(0))
            .is_some_and(|s| s.state() == SlotState::Opened)
    });
    assert!(ringing);
    println!("user 1's phone is ringing (web click placed the call)");

    mn.net.user(u1, SlotId(0), UserCmd::Accept);
    mn.net.run_until_quiescent(T);
    println!("user 1 answered; user 2's phone is now ringing");

    mn.plane.reset_flows();
    mn.pump_media(10);
    let tone_level = mn
        .plane
        .last_rx(addr(1))
        .map(|p| p.frame.rms())
        .unwrap_or(0.0);
    println!("user 1 hears ringback from the tone generator (rms = {tone_level:.0})");

    mn.net.user(u2, SlotId(0), UserCmd::Accept);
    mn.settle_and_pump(T, 10);
    println!("user 2 answered; tone generator disconnected");
    let (to, codec) = mn
        .net
        .media(u1)
        .slot(SlotId(0))
        .unwrap()
        .tx_route()
        .expect("user 1 transmits");
    println!("user 1 now sends {codec} directly to {to} — the flowlink re-linked");
    println!("the existing channel to the new party without user 1 noticing.");
}
