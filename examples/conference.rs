//! A three-party audio conference (paper Fig. 7) with the partial-muting
//! variants of §IV-B, driven through the conference server and the mixing
//! bridge.
//!
//! Run with: `cargo run --example conference`

use ipmedia::apps::conference::{BridgeLogic, ConferenceLogic};
use ipmedia::apps::MediaNet;
use ipmedia::core::endpoint::EndpointLogic;
use ipmedia::core::goal::{AcceptMode, EndpointPolicy, UserCmd};
use ipmedia::core::ids::ChannelId;
use ipmedia::core::signal::{AppEvent, MetaSignal};
use ipmedia::core::{BoxInput, MediaAddr, Medium};
use ipmedia::media::{MixMatrix, SourceKind};
use ipmedia::netsim::{Network, SimConfig, SimTime};

const T: SimTime = SimTime(600_000_000);

fn addr(h: u8) -> MediaAddr {
    MediaAddr::v4(10, 0, 0, h, 4000)
}

fn main() {
    let mut net = Network::new(SimConfig::paper());
    let names = ["alice", "bob", "carol"];
    let parties: Vec<_> = names
        .iter()
        .enumerate()
        .map(|(i, n)| {
            net.add_box(
                *n,
                Box::new(EndpointLogic::new(
                    EndpointPolicy::audio(addr(1 + i as u8)),
                    AcceptMode::Auto,
                )),
            )
        })
        .collect();
    let (bridge_logic, shared_matrix, port_map) =
        BridgeLogic::new(MediaAddr::v4(10, 0, 0, 20, 5000));
    let bridge = net.add_box("bridge", Box::new(bridge_logic));
    let conf = net.add_box("conf-server", Box::new(ConferenceLogic::new("bridge")));
    net.run_until_quiescent(T);

    // Everyone joins.
    let mut slots = Vec::new();
    for &p in &parties {
        let (_, s, _) = net.connect(p, conf, 1);
        slots.push(s[0]);
    }
    net.run_until_quiescent(T);
    for (i, &p) in parties.iter().enumerate() {
        net.user(p, slots[i], UserCmd::Open(Medium::Audio));
    }
    net.run_until_quiescent(T);

    let mut mn = MediaNet::new(net);
    mn.endpoint(parties[0], addr(1), SourceKind::SpeechLike(1));
    mn.endpoint(parties[1], addr(2), SourceKind::SpeechLike(2));
    mn.endpoint(parties[2], addr(3), SourceKind::Silence);
    let ports = port_map.lock().unwrap().clone();
    let port_addrs: Vec<_> = ports.iter().map(|(_, a)| *a).collect();
    mn.plane.add_bridge(port_addrs, MixMatrix::full(3));
    for (i, (slot, a)) in ports.iter().enumerate() {
        mn.port(
            bridge,
            *slot,
            *a,
            SourceKind::MixPort { bridge: 0, port: i },
        );
    }

    mn.settle_and_pump(T, 10);
    println!("full conference (everyone hears everyone else):");
    for (i, n) in names.iter().enumerate() {
        let rms = mn.plane.last_rx(addr(1 + i as u8)).unwrap().frame.rms();
        println!("  {n} hears mix at rms {rms:.0}");
    }

    // Business muting: bob's noisy line is dropped from every mix.
    let m = MixMatrix::business(3, &[1]);
    mn.net.inject_input(
        conf,
        BoxInput::Meta {
            channel: ChannelId(u32::MAX),
            meta: MetaSignal::App(AppEvent::MixMatrix(m.to_rows())),
        },
    );
    mn.net.run_until_quiescent(T);
    let rows = shared_matrix.lock().unwrap().clone();
    mn.plane.set_matrix(0, MixMatrix::from_rows(3, &rows));
    mn.settle_and_pump(T, 10);
    println!("\nbusiness muting of bob (input dropped, output kept):");
    for (i, n) in names.iter().enumerate() {
        let rms = mn.plane.last_rx(addr(1 + i as u8)).unwrap().frame.rms();
        println!("  {n} hears mix at rms {rms:.0}");
    }

    // Whisper coaching: alice = agent, bob = customer, carol = supervisor.
    let m = MixMatrix::whisper_coach(0, 1, 2);
    mn.net.inject_input(
        conf,
        BoxInput::Meta {
            channel: ChannelId(u32::MAX),
            meta: MetaSignal::App(AppEvent::MixMatrix(m.to_rows())),
        },
    );
    mn.net.run_until_quiescent(T);
    let rows = shared_matrix.lock().unwrap().clone();
    mn.plane.set_matrix(0, MixMatrix::from_rows(3, &rows));
    mn.settle_and_pump(T, 10);
    println!("\nwhisper coaching (carol advises alice; bob must not hear her):");
    for (i, n) in names.iter().enumerate() {
        let rms = mn.plane.last_rx(addr(1 + i as u8)).unwrap().frame.rms();
        println!("  {n} hears mix at rms {rms:.0}");
    }
    println!(
        "\nthe four goal primitives connect the parties; the partial mutes are\n\
         delegated to the bridge via standardized meta-signals (§IV-B)."
    );
}
