//! Observability tour: trace a call, render it as the paper's Fig.-10
//! signal ladder, and export the metrics the observer collected.
//!
//! The same scenario as `quickstart` — two phones flowlinked through a
//! server — but with a [`CountingObserver`] installed on the simulator
//! and per-signal tracing enabled. After the call sets up we print:
//!
//! 1. the ASCII signal ladder of every signal on the wire (Fig. 10),
//! 2. the metrics registry in Prometheus text exposition format,
//! 3. the same snapshot as a single JSON record (the JSONL convention).
//!
//! Run with: `cargo run --example observability`

use ipmedia::core::boxes::GoalSpec;
use ipmedia::core::endpoint::{EndpointLogic, NullLogic};
use ipmedia::core::goal::{EndpointPolicy, UserCmd};
use ipmedia::core::{BoxCmd, MediaAddr, Medium};
use ipmedia::netsim::{Network, SimConfig, SimTime};
use ipmedia::obs::{snapshot_json, CountingObserver, Registry};
use std::sync::Arc;

fn main() {
    let mut net = Network::new(SimConfig::paper());
    net.trace_enabled = true;

    // Every protocol event feeds a lock-free metrics registry.
    let registry = Arc::new(Registry::new());
    net.set_observer(Box::new(CountingObserver::new(registry.clone())));

    let alice = net.add_box(
        "alice",
        Box::new(EndpointLogic::resource(EndpointPolicy::audio(
            MediaAddr::v4(10, 0, 0, 1, 4000),
        ))),
    );
    let bob = net.add_box(
        "bob",
        Box::new(EndpointLogic::resource(EndpointPolicy::audio(
            MediaAddr::v4(10, 0, 0, 2, 4000),
        ))),
    );
    let server = net.add_box("server", Box::new(NullLogic));

    let (_, alice_slots, srv_a) = net.connect(alice, server, 1);
    let (_, srv_b, _) = net.connect(server, bob, 1);
    net.run_until_quiescent(SimTime(10_000_000));

    let (a, b) = (srv_a[0], srv_b[0]);
    net.apply(server, move |pb| {
        pb.media_mut()
            .set_goal(GoalSpec::Link { a, b })
            .into_iter()
            .map(BoxCmd::Signal)
            .collect()
    });
    net.user(alice, alice_slots[0], UserCmd::Open(Medium::Audio));
    net.run_until_quiescent(SimTime(10_000_000));

    // (1) The signal ladder: one column per box, arrows per signal,
    // exactly the shape of the paper's Fig. 10.
    println!("{}", net.ladder());

    // (2) Prometheus text exposition of the registry.
    let snap = registry.snapshot();
    println!("{}", ipmedia::obs::prometheus_text(&snap));

    // (3) The same snapshot as one machine-readable JSON record.
    println!("{}", snapshot_json(&snap));

    assert!(snap.signals_sent_total() > 0);
    assert_eq!(snap.signals_sent_total(), snap.signals_received_total());
}
