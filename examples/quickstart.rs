//! Quickstart: two phones, one application server, one audio call.
//!
//! Demonstrates the library's core loop: build a network of boxes, put the
//! server's two slots under a `flowLink`, let a phone open an audio
//! channel, and watch the compositional protocol negotiate media flow
//! directly between the endpoints — the media packets never touch the
//! server (paper §I, Fig. 1).
//!
//! Run with: `cargo run --example quickstart`

use ipmedia::core::boxes::GoalSpec;
use ipmedia::core::endpoint::{EndpointLogic, NullLogic};
use ipmedia::core::goal::{EndpointPolicy, UserCmd};
use ipmedia::core::path::PathEnds;
use ipmedia::core::{BoxCmd, MediaAddr, Medium};
use ipmedia::netsim::{Network, SimConfig, SimTime};

fn main() {
    // A network with the paper's timing: 34 ms network latency, 20 ms
    // per-box compute cost (§VIII-C).
    let mut net = Network::new(SimConfig::paper());

    // Two genuine media endpoints; they auto-accept incoming channels.
    let alice = net.add_box(
        "alice",
        Box::new(EndpointLogic::resource(EndpointPolicy::audio(
            MediaAddr::v4(10, 0, 0, 1, 4000),
        ))),
    );
    let bob = net.add_box(
        "bob",
        Box::new(EndpointLogic::resource(EndpointPolicy::audio(
            MediaAddr::v4(10, 0, 0, 2, 4000),
        ))),
    );
    // An application server between them (it has no logic of its own here;
    // we drive its goal annotations directly).
    let server = net.add_box("server", Box::new(NullLogic));

    // Signaling channels: alice—server and server—bob, one tunnel each.
    let (_, alice_slots, srv_a) = net.connect(alice, server, 1);
    let (_, srv_b, bob_slots) = net.connect(server, bob, 1);
    net.run_until_quiescent(SimTime(10_000_000));

    // The server flowlinks its two slots: from now on the two tunnels form
    // one signaling path, transparently.
    let (a, b) = (srv_a[0], srv_b[0]);
    net.apply(server, move |pb| {
        pb.media_mut()
            .set_goal(GoalSpec::Link { a, b })
            .into_iter()
            .map(BoxCmd::Signal)
            .collect()
    });
    net.run_until_quiescent(SimTime(10_000_000));

    // Alice picks up and opens an audio channel.
    let t0 = net.now();
    net.user(alice, alice_slots[0], UserCmd::Open(Medium::Audio));
    net.run_until_quiescent(SimTime(10_000_000));

    // Inspect the path endpoints: Alice's slot and Bob's slot.
    let sa = net.media(alice).slot(alice_slots[0]).unwrap();
    let sb = net.media(bob).slot(bob_slots[0]).unwrap();
    let ends = PathEnds::new(sa, sb);

    println!("call setup completed in {}", net.now() - t0);
    println!("path state: bothFlowing = {}", ends.both_flowing());
    let (to, codec) = sa.tx_route().expect("alice transmits");
    println!("alice sends {codec} directly to {to}");
    let (to, codec) = sb.tx_route().expect("bob transmits");
    println!("bob   sends {codec} directly to {to}");

    assert!(ends.both_flowing());
    println!("\nnote: media flows endpoint-to-endpoint; the server only saw signaling.");
}
