//! The verification campaign of paper §VIII-A, run against the *actual*
//! implementation: six path types × {0, 1, 2} flowlinks, exhaustively
//! explored with nondeterministic initial phases, checked for safety and
//! the §V temporal specifications.
//!
//! The paper model-checked hand-written Promela models with Spin and could
//! not afford paths with two flowlinks ("something like 900 Gb of memory
//! and 300 hours"). The canonicalized state representation here checks
//! them in seconds.
//!
//! Run with: `cargo run --release --example verify [budget_scale] [max_links]`

use ipmedia::core::path::PathType;
use ipmedia::mck::{budgeted, check_path, render_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let scale: u8 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let max_links: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(2);

    println!(
        "verification campaign: budgets scale={scale}, paths with 0..={max_links} flowlinks\n"
    );
    let mut results = Vec::new();
    let mut all_pass = true;
    for links in 0..=max_links {
        for pt in PathType::all() {
            let (l, r) = pt.ends();
            let cfg = budgeted(links, l, r, scale);
            let (res, _) = check_path(&cfg, 5_000_000);
            all_pass &= res.passed();
            results.push(res);
        }
    }
    println!("{}", render_table(&results));
    if all_pass {
        println!("all configurations PASS: safety (clean terminal states) and the");
        println!("§V path specifications hold over every explored interleaving.");
    } else {
        println!("VIOLATIONS FOUND — see the table above.");
        std::process::exit(1);
    }
}
